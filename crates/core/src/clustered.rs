//! The clustered FITing-Tree (paper Figure 2): unique keys over a sorted
//! attribute, segments stored in a B+ tree keyed by segment start.

use crate::builder::FitingTreeBuilder;
use crate::directory::FlatDirectory;
use crate::error::BuildError;
use crate::key::Key;
use crate::range::RangeIter;
use crate::segment::{SearchStrategy, Segment};
use crate::stats::{DirectoryPath, FitingTreeStats, LookupTrace};
use crate::SEGMENT_METADATA_BYTES;
use fiting_btree::BPlusTree;
use fiting_plr::{Point, ShrinkingCone};
use std::ops::RangeBounds;
use std::time::Instant;

/// A clustered FITing-Tree index mapping unique keys to values.
///
/// See the [crate docs](crate) for the full model. Construction goes
/// through [`FitingTreeBuilder::new`] (or the equivalent
/// `FitingTree::<K, V>::builder`); the only required parameter is the
/// error budget (maximum distance, in slots, between a key's interpolated
/// and true position).
#[derive(Clone)]
pub struct FitingTree<K: Key, V> {
    pub(crate) error: u64,
    pub(crate) buffer_size: u64,
    /// Segmentation budget: `error − buffer_size` (paper Section 5).
    pub(crate) seg_error: u64,
    pub(crate) strategy: SearchStrategy,
    pub(crate) tree_order: usize,
    /// Mutation-side segment directory: anchor key → arena slot.
    /// Structural updates (segment split/merge/insert/remove) land here
    /// in O(log S); **lookups never descend it** — they go through the
    /// flat mirror below.
    pub(crate) tree: BPlusTree<K, usize>,
    /// Read-side segment directory: a dense SoA mirror of `tree`,
    /// rebuilt by [`rebuild_directory`](Self::rebuild_directory) after
    /// every structural mutation. All point and range lookups locate
    /// their segment here with an interpolation-seeded branchless
    /// bounded search instead of a pointer-chasing tree descent.
    pub(crate) dir: FlatDirectory<K>,
    /// Segment arena; slots are recycled through `free`.
    pub(crate) segments: Vec<Option<Segment<K, V>>>,
    pub(crate) free: Vec<usize>,
    pub(crate) len: usize,
}

impl<K: Key, V> FitingTree<K, V> {
    /// Starts building an index with the given error budget (in slots).
    ///
    /// Defaults: buffer size `error / 2` (the paper's evaluation split),
    /// binary in-segment search, B+ tree order 16.
    #[must_use]
    pub fn builder(error: u64) -> FitingTreeBuilder {
        FitingTreeBuilder::new(error)
    }

    pub(crate) fn from_parts(
        error: u64,
        buffer_size: u64,
        strategy: SearchStrategy,
        tree_order: usize,
    ) -> Result<Self, BuildError> {
        if buffer_size > error || (error > 0 && buffer_size == error) {
            return Err(BuildError::BufferConsumesError { error, buffer_size });
        }
        Ok(FitingTree {
            error,
            buffer_size,
            seg_error: error - buffer_size,
            strategy,
            tree_order,
            tree: BPlusTree::with_order(tree_order),
            dir: FlatDirectory::new(),
            segments: Vec::new(),
            free: Vec::new(),
            len: 0,
        })
    }

    /// Bulk loads strictly increasing `(key, value)` pairs (paper
    /// Section 3): one segmentation pass, then a bottom-up B+ tree build
    /// over the segment anchors.
    pub(crate) fn bulk_load_sorted<I>(mut self, iter: I) -> Result<Self, BuildError>
    where
        I: IntoIterator<Item = (K, V)>,
    {
        let mut data: Vec<(K, V)> = Vec::new();
        for (i, (k, v)) in iter.into_iter().enumerate() {
            if let Some((prev, _)) = data.last() {
                if *prev >= k {
                    return Err(BuildError::UnsortedInput { at: i });
                }
            }
            data.push((k, v));
        }
        if data.is_empty() {
            return Ok(self);
        }
        self.len = data.len();

        // One streaming segmentation pass over the key projections.
        let mut sc = ShrinkingCone::new(self.seg_error);
        let mut plr_segs = Vec::new();
        for (pos, (k, _)) in data.iter().enumerate() {
            if let Some(seg) = sc.push(Point::new(k.to_f64(), pos as u64)) {
                plr_segs.push(seg);
            }
        }
        if let Some(seg) = sc.finish() {
            plr_segs.push(seg);
        }

        // Carve the data vector into per-segment pages, back to front so
        // each split_off is O(segment length).
        let mut pages: Vec<Segment<K, V>> = Vec::with_capacity(plr_segs.len());
        for ls in plr_segs.iter().rev() {
            let page = data.split_off(ls.start_pos as usize);
            let start_key = page[0].0;
            pages.push(Segment::new(start_key, ls.slope, page));
        }
        pages.reverse();

        // Install pages in the arena and bulk load the directory tree.
        self.segments = Vec::with_capacity(pages.len());
        let mut entries = Vec::with_capacity(pages.len());
        for (i, seg) in pages.into_iter().enumerate() {
            entries.push((seg.start_key, i));
            self.segments.push(Some(seg));
        }
        self.tree = BPlusTree::bulk_load_with(entries, self.tree_order, 1.0);
        self.rebuild_directory();
        Ok(self)
    }

    /// Re-mirrors the mutation-side B+ tree into the flat read-side
    /// directory — one dense O(S) pass, called after every structural
    /// mutation (bulk load, segment split/merge/insert/remove). Between
    /// calls the flat directory is immutable, which is what lets the
    /// lookup path search it branchlessly with no locks or pointer
    /// chases.
    fn rebuild_directory(&mut self) {
        debug_assert!(self.segments.len() <= u32::MAX as usize);
        self.dir
            .rebuild(self.tree.iter().map(|(k, &slot)| (*k, slot as u32)));
    }

    /// Number of key/value pairs in the index.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured total error budget.
    #[must_use]
    pub fn error(&self) -> u64 {
        self.error
    }

    /// The per-segment insert buffer capacity.
    #[must_use]
    pub fn buffer_size(&self) -> u64 {
        self.buffer_size
    }

    /// The effective segmentation error (`error − buffer_size`).
    #[must_use]
    pub fn segmentation_error(&self) -> u64 {
        self.seg_error
    }

    /// Number of segments (= leaf entries of the directory tree).
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.tree.len()
    }

    /// Locates the arena slot of the segment responsible for `key`:
    /// the floor segment, falling back to the first segment for keys
    /// below every anchor.
    ///
    /// This is the read hot path: it searches the flat SoA directory
    /// (interpolation seed → gallop → branchless binary) and never
    /// descends the pointer-based B+ tree.
    #[inline]
    fn locate(&self, key: &K) -> Option<usize> {
        self.locate_traced(key).map(|(slot, _)| slot)
    }

    /// [`locate`](Self::locate) plus the [`DirectoryPath`] marker of
    /// the structure that produced the slot. The marker is attached at
    /// the routing site — each arm of this function names the directory
    /// it actually searched — so rerouting lookups through the B+ tree
    /// cannot keep reporting [`DirectoryPath::FlatDirectory`] without
    /// the dishonesty being visible right here, and the trace-level
    /// test in `tests/hotpath_differential.rs` pins the expected value.
    #[inline]
    fn locate_traced(&self, key: &K) -> Option<(usize, DirectoryPath)> {
        self.dir
            .locate(*key)
            .map(|slot| (slot, DirectoryPath::FlatDirectory))
    }

    /// Point lookup (paper Algorithm 3): flat-directory search,
    /// interpolation, bounded local search, buffer check.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<&V> {
        let slot = self.locate(key)?;
        self.segments[slot]
            .as_ref()
            .expect("directory points at live segment")
            .get(*key, self.seg_error, self.strategy)
    }

    /// Mutable point lookup.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let slot = self.locate(key)?;
        self.segments[slot]
            .as_mut()
            .expect("directory points at live segment")
            .get_mut(*key, self.seg_error, self.strategy)
    }

    /// Whether `key` is present.
    #[must_use]
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Instrumented lookup for the Figure 13 breakdown: returns the value
    /// and the time spent in each of the two phases (segment location
    /// vs in-segment search), plus which directory the locate step
    /// reported searching — [`DirectoryPath::FlatDirectory`] on the
    /// current hot path (the internal `locate_traced` step keeps the
    /// marker honest).
    #[must_use]
    pub fn get_traced(&self, key: &K) -> (Option<&V>, LookupTrace) {
        let t0 = Instant::now();
        // Same routing as `get`; the marker reports which directory the
        // locate step searched.
        let located = self.locate_traced(key);
        let tree_nanos = t0.elapsed().as_nanos() as u64;
        let via = located.map_or(DirectoryPath::FlatDirectory, |(_, via)| via);
        let t1 = Instant::now();
        let value = located.and_then(|(s, _)| {
            self.segments[s]
                .as_ref()
                .expect("directory points at live segment")
                .get(*key, self.seg_error, self.strategy)
        });
        let segment_nanos = t1.elapsed().as_nanos() as u64;
        (
            value,
            LookupTrace {
                tree_nanos,
                segment_nanos,
                via,
            },
        )
    }

    /// Inserts `key → value` (paper Algorithm 4), returning the previous
    /// value if the key existed. New keys go to the covering segment's
    /// sorted buffer; a full buffer triggers merge + re-segmentation.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let Some(slot) = self.locate(&key) else {
            // Empty index: open the first segment.
            let slot = self.alloc_slot(Segment::new(key, 0.0, vec![(key, value)]));
            self.tree.insert(key, slot);
            self.rebuild_directory();
            self.len += 1;
            return None;
        };
        let seg = self.segments[slot]
            .as_mut()
            .expect("directory points at live segment");
        let old = seg.insert(key, value, self.seg_error, self.strategy);
        if old.is_some() {
            return old;
        }
        self.len += 1;
        if seg.buffer.len() > self.buffer_size as usize {
            self.resegment(slot);
        }
        None
    }

    /// Removes `key`, returning its value. **Extension over the paper**
    /// (which does not discuss deletes): buffer entries are dropped
    /// directly; page removals are O(1) tombstones (slots keep their
    /// position, so predictions stay exact — the value is cloned out of
    /// the dense page) and trigger re-segmentation once they exceed
    /// half the segmentation budget, so pages shed dead slots and the
    /// lookup bound stays `O(error)`.
    pub fn remove(&mut self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let slot = self.locate(key)?;
        let seg = self.segments[slot]
            .as_mut()
            .expect("directory points at live segment");
        let removed = seg.remove(*key, self.seg_error, self.strategy)?;
        self.len -= 1;
        if seg.len() == 0 {
            // Drop the empty segment entirely (keep at least none: an
            // empty index has an empty directory).
            let anchor = seg.start_key;
            self.segments[slot] = None;
            self.free.push(slot);
            self.tree.remove(&anchor);
            self.rebuild_directory();
        } else if seg.removed > self.seg_error / 2 {
            self.resegment(slot);
        }
        Some(removed)
    }

    /// Iterator over entries with keys in `range`, in key order.
    #[must_use]
    pub fn range<R: RangeBounds<K>>(&self, range: R) -> RangeIter<'_, K, V> {
        RangeIter::new(self, range)
    }

    /// Iterator over all entries in key order.
    #[must_use]
    pub fn iter(&self) -> RangeIter<'_, K, V> {
        self.range(..)
    }

    /// Index structure size in bytes, following the paper's accounting:
    /// directory tree + flat read-side directory +
    /// [`SEGMENT_METADATA_BYTES`] per segment. The table data itself is
    /// *not* index overhead (it exists regardless).
    #[must_use]
    pub fn index_size_bytes(&self) -> usize {
        self.tree.size_in_bytes()
            + self.dir.size_bytes()
            + self.segment_count() * SEGMENT_METADATA_BYTES
    }

    /// Full statistics snapshot; walks the directory tree and arena.
    #[must_use]
    pub fn stats(&self) -> FitingTreeStats {
        let tree = self.tree.stats();
        let mut buffered = 0usize;
        let mut data_bytes = 0usize;
        let mut live = 0usize;
        for seg in self.segments.iter().flatten() {
            buffered += seg.buffer.len();
            data_bytes += seg.payload_bytes();
            live += 1;
        }
        FitingTreeStats {
            len: self.len,
            segment_count: live,
            tree_depth: tree.depth,
            tree_nodes: tree.total_nodes(),
            flat_directory_bytes: self.dir.size_bytes(),
            index_size_bytes: self.index_size_bytes(),
            data_size_bytes: data_bytes,
            buffered_entries: buffered,
            avg_segment_len: if live == 0 {
                0.0
            } else {
                self.len as f64 / live as f64
            },
            error: self.error,
            seg_error: self.seg_error,
            buffer_size: self.buffer_size,
        }
    }

    /// Iterator over keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// Iterator over values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }

    /// First (smallest-key) entry.
    #[must_use]
    pub fn first(&self) -> Option<(&K, &V)> {
        self.iter().next()
    }

    /// Last (largest-key) entry.
    #[must_use]
    pub fn last(&self) -> Option<(&K, &V)> {
        // The last directory entry owns the largest anchor; its page and
        // buffer maxima compete for the global maximum.
        let slot = self.dir.last_slot()?;
        let seg = self.segments[slot]
            .as_ref()
            .expect("directory points at live segment");
        match (seg.last_live(), seg.buffer.last()) {
            (Some((dk, dv)), Some((bk, bv))) => Some(if dk > bk { (dk, dv) } else { (bk, bv) }),
            (Some((dk, dv)), None) => Some((dk, dv)),
            (None, Some((bk, bv))) => Some((bk, bv)),
            (None, None) => None,
        }
    }

    /// Rebuilds the index with a different error budget, consuming the
    /// current one — the DBA retuning knob fed by the cost model's
    /// selectors (pick a new error, then `rebuild`).
    pub fn rebuild(self, error: u64) -> Result<Self, BuildError> {
        let strategy = self.strategy;
        let order = self.tree_order;
        let mut entries: Vec<(K, V)> = Vec::with_capacity(self.len);
        let slots: Vec<usize> = self.tree.iter().map(|(_, &slot)| slot).collect();
        let mut segments = self.segments;
        for slot in slots {
            let seg = segments[slot]
                .take()
                .expect("directory points at live segment");
            entries.extend(seg.into_merged());
        }
        FitingTree::from_parts(error, error / 2, strategy, order)?.bulk_load_sorted(entries)
    }

    /// Merges a segment's page and buffer, re-runs ShrinkingCone over the
    /// merged run, and swaps the resulting segment(s) into the directory
    /// (paper Algorithm 4, lines 5–9).
    fn resegment(&mut self, slot: usize) {
        let seg = self.segments[slot]
            .take()
            .expect("resegment target is live");
        self.free.push(slot);
        let anchor = seg.start_key;
        let merged = seg.into_merged();
        self.tree.remove(&anchor);

        let mut sc = ShrinkingCone::new(self.seg_error);
        let mut plr_segs = Vec::new();
        for (pos, (k, _)) in merged.iter().enumerate() {
            if let Some(s) = sc.push(Point::new(k.to_f64(), pos as u64)) {
                plr_segs.push(s);
            }
        }
        if let Some(s) = sc.finish() {
            plr_segs.push(s);
        }

        let mut rest = merged;
        let mut pieces: Vec<Segment<K, V>> = Vec::with_capacity(plr_segs.len());
        for ls in plr_segs.iter().rev() {
            let page = rest.split_off(ls.start_pos as usize);
            pieces.push(Segment::new(page[0].0, ls.slope, page));
        }
        for seg in pieces.into_iter().rev() {
            let start_key = seg.start_key;
            let new_slot = self.alloc_slot(seg);
            self.tree.insert(start_key, new_slot);
        }
        self.rebuild_directory();
    }

    fn alloc_slot(&mut self, seg: Segment<K, V>) -> usize {
        if let Some(slot) = self.free.pop() {
            self.segments[slot] = Some(seg);
            slot
        } else {
            self.segments.push(Some(seg));
            self.segments.len() - 1
        }
    }

    /// Verifies structural invariants; used by tests.
    ///
    /// Checks: the flat read-side directory is an exact mirror of the
    /// mutation-side B+ tree; directory entries point at live segments
    /// registered under their anchor; segment pages and buffers are
    /// sorted; every live page key is found by a windowed lookup (the
    /// error guarantee) *and* located to its segment by the flat
    /// directory; `len` consistency; segments are disjoint and ordered.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.tree.check_invariants()?;
        if self.dir.len() != self.tree.len() {
            return Err(format!(
                "flat directory has {} entries, B+ tree has {}",
                self.dir.len(),
                self.tree.len()
            ));
        }
        for ((anchor, &slot), (flat_anchor, flat_slot)) in self.tree.iter().zip(self.dir.entries())
        {
            if *anchor != flat_anchor || slot != flat_slot {
                return Err(format!(
                    "flat directory diverged: tree ({anchor:?}, {slot}) vs flat \
                     ({flat_anchor:?}, {flat_slot})"
                ));
            }
        }
        let mut counted = 0usize;
        let mut prev_max: Option<K> = None;
        let mut first = true;
        for (anchor, &slot) in self.tree.iter() {
            let seg = self
                .segments
                .get(slot)
                .and_then(|s| s.as_ref())
                .ok_or_else(|| format!("directory entry {anchor:?} points at dead slot {slot}"))?;
            if seg.start_key != *anchor {
                return Err(format!(
                    "segment anchored at {anchor:?} believes its start is {:?}",
                    seg.start_key
                ));
            }
            if !seg.keys.windows(2).all(|w| w[0] < w[1]) {
                return Err("unsorted segment page".into());
            }
            if seg.keys.len() != seg.values.len() {
                return Err("page keys/values length mismatch".into());
            }
            let dead = (0..seg.keys.len()).filter(|&i| !seg.is_live(i)).count();
            if seg.removed as usize != dead {
                return Err("tombstone count diverged from bitmap".into());
            }
            if !seg.buffer.windows(2).all(|w| w[0].0 < w[1].0) {
                return Err("unsorted segment buffer".into());
            }
            if seg.buffer.len() > self.buffer_size as usize + 1 {
                return Err(format!(
                    "buffer over capacity: {} > {}",
                    seg.buffer.len(),
                    self.buffer_size
                ));
            }
            if let (Some(min), Some(prev)) = (seg.min_key(), prev_max) {
                // Only the first segment may hold keys below its anchor.
                if !first && min <= prev {
                    return Err(format!(
                        "segment overlap: min {min:?} <= previous max {prev:?}"
                    ));
                }
            }
            for (i, k) in seg.keys.iter().enumerate() {
                if !seg.is_live(i) {
                    continue; // tombstoned slot: invisible to lookups
                }
                if seg.get(*k, self.seg_error, self.strategy).is_none() {
                    return Err(format!(
                        "error guarantee violated: page key {k:?} not found within window"
                    ));
                }
                if self.dir.locate(*k) != Some(slot) {
                    return Err(format!(
                        "flat directory routes live key {k:?} away from its segment"
                    ));
                }
            }
            counted += seg.len();
            prev_max = seg.max_key().or(prev_max);
            first = false;
        }
        if counted != self.len {
            return Err(format!(
                "len mismatch: counted {counted}, recorded {}",
                self.len
            ));
        }
        Ok(())
    }
}

impl<K: Key, V: std::fmt::Debug> std::fmt::Debug for FitingTree<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FitingTree")
            .field("len", &self.len)
            .field("error", &self.error)
            .field("segments", &self.segment_count())
            .finish()
    }
}

impl<K: Key, V: Clone> fiting_index_api::SortedIndex<K, V> for FitingTree<K, V> {
    type RangeIter<'a>
        = std::iter::Map<crate::range::RangeIter<'a, K, V>, fn((&'a K, &'a V)) -> (K, V)>
    where
        Self: 'a,
        K: 'a,
        V: 'a;

    fn name(&self) -> &'static str {
        "FITing-Tree"
    }

    fn get(&self, key: &K) -> Option<&V> {
        FitingTree::get(self, key)
    }

    fn insert(&mut self, key: K, value: V) -> Option<V> {
        FitingTree::insert(self, key, value)
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        FitingTree::remove(self, key)
    }

    fn len(&self) -> usize {
        FitingTree::len(self)
    }

    fn size_bytes(&self) -> usize {
        FitingTree::index_size_bytes(self)
    }

    fn range<R: std::ops::RangeBounds<K>>(&self, range: R) -> Self::RangeIter<'_> {
        FitingTree::range(self, range).map(fiting_index_api::clone_pair as fn((&K, &V)) -> (K, V))
    }
}

impl<K: Key, V: Clone> fiting_index_api::BuildableIndex<K, V> for FitingTree<K, V> {
    type Config = crate::builder::FitingTreeBuilder;
    type BuildError = crate::error::BuildError;

    fn build_sorted(
        config: &Self::Config,
        sorted: Vec<(K, V)>,
    ) -> Result<Self, crate::error::BuildError> {
        config.clone().bulk_load(sorted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FitingTreeBuilder;

    fn build(n: u64, error: u64) -> FitingTree<u64, u64> {
        FitingTreeBuilder::new(error)
            .bulk_load((0..n).map(|k| (k * 7, k)))
            .unwrap()
    }

    #[test]
    fn bulk_load_and_get_all() {
        let t = build(10_000, 32);
        assert_eq!(t.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(t.get(&(k * 7)), Some(&k), "key {}", k * 7);
            assert_eq!(t.get(&(k * 7 + 1)), None);
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn empty_index() {
        let t: FitingTree<u64, u64> = FitingTreeBuilder::new(16).build_empty().unwrap();
        assert!(t.is_empty());
        assert_eq!(t.get(&1), None);
        assert_eq!(t.iter().count(), 0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn bulk_load_rejects_unsorted() {
        let err = FitingTree::<u64, u64>::builder(16)
            .bulk_load([(3, 0), (2, 0)])
            .unwrap_err();
        assert!(matches!(err, BuildError::UnsortedInput { at: 1 }));
    }

    #[test]
    fn linear_keys_make_one_segment() {
        let t = build(100_000, 16);
        assert_eq!(t.segment_count(), 1);
        // The directory is then a single leaf.
        assert!(t.index_size_bytes() < 200);
    }

    #[test]
    fn error_controls_segment_count_on_curvy_data() {
        let keys: Vec<u64> = (0..50_000u64).map(|k| k * k / 64).collect();
        let mut dedup = keys;
        dedup.dedup();
        let pairs: Vec<(u64, u64)> = dedup.iter().map(|&k| (k, k)).collect();
        let tight = FitingTreeBuilder::new(8).bulk_load(pairs.clone()).unwrap();
        let loose = FitingTreeBuilder::new(512).bulk_load(pairs).unwrap();
        assert!(tight.segment_count() > loose.segment_count());
        tight.check_invariants().unwrap();
        loose.check_invariants().unwrap();
    }

    #[test]
    fn insert_then_get() {
        let mut t = build(1_000, 64);
        assert_eq!(t.insert(7 * 500 + 1, 9999), None);
        assert_eq!(t.get(&(7 * 500 + 1)), Some(&9999));
        assert_eq!(t.len(), 1001);
        // Replacement returns the old value and does not grow the index.
        assert_eq!(t.insert(7 * 500 + 1, 1), Some(9999));
        assert_eq!(t.len(), 1001);
        t.check_invariants().unwrap();
    }

    #[test]
    fn inserts_below_global_minimum() {
        let mut t = FitingTreeBuilder::new(16)
            .bulk_load((100..200u64).map(|k| (k, k)))
            .unwrap();
        t.insert(5, 55);
        t.insert(1, 11);
        assert_eq!(t.get(&5), Some(&55));
        assert_eq!(t.get(&1), Some(&11));
        assert_eq!(t.range(..).next().map(|(k, _)| *k), Some(1));
        t.check_invariants().unwrap();
    }

    #[test]
    fn buffer_overflow_triggers_resegmentation() {
        let mut t = FitingTreeBuilder::new(16)
            .buffer_size(4)
            .bulk_load((0..1000u64).map(|k| (k * 10, k)))
            .unwrap();
        let before = t.segment_count();
        // Flood one region with inserts to overflow its buffer.
        for k in 0..100u64 {
            t.insert(5000 + k * 2 + 1, k);
        }
        assert_eq!(t.len(), 1100);
        for k in 0..100u64 {
            assert_eq!(t.get(&(5000 + k * 2 + 1)), Some(&k));
        }
        // Everything originally present is still there.
        for k in 0..1000u64 {
            assert_eq!(t.get(&(k * 10)), Some(&k));
        }
        assert!(t.segment_count() >= before);
        t.check_invariants().unwrap();
    }

    #[test]
    fn monotonic_append_workload() {
        let mut t: FitingTree<u64, u64> = FitingTreeBuilder::new(32).build_empty().unwrap();
        for k in 0..5_000u64 {
            t.insert(k, k);
        }
        assert_eq!(t.len(), 5_000);
        for k in (0..5_000u64).step_by(97) {
            assert_eq!(t.get(&k), Some(&k));
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_roundtrip_and_window_widening() {
        let mut t = build(2_000, 16);
        for k in (0..2_000u64).step_by(3) {
            assert_eq!(t.remove(&(k * 7)), Some(k), "removing {}", k * 7);
        }
        for k in 0..2_000u64 {
            let expect = if k % 3 == 0 { None } else { Some(&k) };
            let expect = expect.copied();
            assert_eq!(t.get(&(k * 7)).copied(), expect, "key {}", k * 7);
        }
        assert_eq!(t.len(), 2_000 - 2_000_usize.div_ceil(3));
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_everything_leaves_clean_index() {
        let mut t = build(500, 8);
        for k in 0..500u64 {
            assert_eq!(t.remove(&(k * 7)), Some(k));
        }
        assert!(t.is_empty());
        assert_eq!(t.segment_count(), 0);
        // And it accepts new data afterwards.
        t.insert(1, 1);
        assert_eq!(t.get(&1), Some(&1));
        t.check_invariants().unwrap();
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t = build(100, 8);
        *t.get_mut(&7).unwrap() = 12345;
        assert_eq!(t.get(&7), Some(&12345));
        assert!(t.get_mut(&8).is_none());
    }

    #[test]
    fn get_traced_phases_sum_to_a_lookup() {
        let t = build(10_000, 64);
        let (v, trace) = t.get_traced(&(7 * 1234));
        assert_eq!(v, Some(&1234));
        // Both phases took *some* time; this is an instrumentation smoke
        // test, not a benchmark.
        assert!(trace.tree_nanos + trace.segment_nanos > 0);
    }

    #[test]
    fn stats_are_consistent() {
        let t = build(10_000, 32);
        let s = t.stats();
        assert_eq!(s.len, 10_000);
        assert_eq!(s.segment_count, t.segment_count());
        assert_eq!(s.error, 32);
        assert_eq!(s.buffer_size, 16);
        assert_eq!(s.seg_error, 16);
        assert!(s.index_size_bytes < s.data_size_bytes);
        assert!(s.avg_segment_len > 1.0);
    }

    #[test]
    fn search_strategies_agree() {
        let pairs: Vec<(u64, u64)> = (0..5_000u64).map(|k| (k * 3 + k % 5, k)).collect();
        let mut sorted = pairs;
        sorted.sort();
        sorted.dedup_by_key(|p| p.0);
        for strategy in [
            SearchStrategy::Binary,
            SearchStrategy::Linear,
            SearchStrategy::Exponential,
            SearchStrategy::Interpolation,
        ] {
            let t = FitingTreeBuilder::new(32)
                .search_strategy(strategy)
                .bulk_load(sorted.clone())
                .unwrap();
            for (k, v) in sorted.iter().step_by(53) {
                assert_eq!(t.get(k), Some(v), "{strategy:?}");
            }
        }
    }

    #[test]
    fn keys_values_first_last() {
        let mut t = build(1_000, 32);
        assert_eq!(t.first().map(|(k, _)| *k), Some(0));
        assert_eq!(t.last().map(|(k, _)| *k), Some(999 * 7));
        assert_eq!(t.keys().count(), 1_000);
        assert_eq!(t.values().next(), Some(&0));
        // A buffered key beyond the last page key becomes the new last.
        t.insert(999 * 7 + 5, 123);
        assert_eq!(t.last(), Some((&(999 * 7 + 5), &123)));
        let empty: FitingTree<u64, u64> = FitingTreeBuilder::new(8).build_empty().unwrap();
        assert_eq!(empty.first(), None);
        assert_eq!(empty.last(), None);
    }

    #[test]
    fn rebuild_changes_error_and_keeps_data() {
        let mut t = build(5_000, 8);
        for k in 0..100u64 {
            t.insert(k * 7 + 3, k);
        }
        let before_segments = t.segment_count();
        let len = t.len();
        let rebuilt = t.rebuild(1024).unwrap();
        assert_eq!(rebuilt.len(), len);
        assert_eq!(rebuilt.error(), 1024);
        assert!(rebuilt.segment_count() < before_segments);
        for k in 0..100u64 {
            assert_eq!(rebuilt.get(&(k * 7 + 3)), Some(&k));
        }
        rebuilt.check_invariants().unwrap();
    }

    #[test]
    fn zero_error_still_works() {
        // error 0 → buffer 0 → every insert re-segments immediately.
        let mut t = FitingTreeBuilder::new(0)
            .bulk_load((0..100u64).map(|k| (k * 2, k)))
            .unwrap();
        for k in 0..100u64 {
            assert_eq!(t.get(&(k * 2)), Some(&k));
        }
        t.insert(51, 999);
        assert_eq!(t.get(&51), Some(&999));
        t.check_invariants().unwrap();
    }
}
