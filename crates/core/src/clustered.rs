//! The clustered FITing-Tree (paper Figure 2): unique keys over a sorted
//! attribute, segments owned by one dense flat directory.
//!
//! The paper stores segments under a conventional B+ tree; this
//! implementation retired that tree entirely. The [`FlatDirectory`] —
//! two dense SoA arrays of anchor keys and arena slots — is the *single*
//! directory structure: lookups search it branchlessly (since PR 3) and
//! structural mutations patch it in place with an incremental
//! [`FlatDirectory::splice`] of the affected window (O(moved segments +
//! tail shift), one `memmove`, no tree walk and no O(S) re-mirror).
//! Whole-run handoffs ([`FitingTree::split_off`] / `absorb`) move SoA
//! pages and directory spans between trees without re-segmentation.

use crate::builder::FitingTreeBuilder;
use crate::directory::FlatDirectory;
use crate::error::{AbsorbError, BuildError};
use crate::key::Key;
use crate::range::RangeIter;
use crate::segment::{SearchStrategy, Segment};
use crate::stats::{DirectoryPath, FitingTreeStats, LookupTrace};
use crate::SEGMENT_METADATA_BYTES;
use fiting_plr::{Point, ShrinkingCone};
use std::ops::RangeBounds;
use std::time::Instant;

/// A clustered FITing-Tree index mapping unique keys to values.
///
/// See the [crate docs](crate) for the full model. Construction goes
/// through [`FitingTreeBuilder::new`] (or the equivalent
/// `FitingTree::<K, V>::builder`); the only required parameter is the
/// error budget (maximum distance, in slots, between a key's interpolated
/// and true position).
#[derive(Clone)]
pub struct FitingTree<K: Key, V> {
    pub(crate) error: u64,
    pub(crate) buffer_size: u64,
    /// Segmentation budget: `error − buffer_size` (paper Section 5).
    pub(crate) seg_error: u64,
    pub(crate) strategy: SearchStrategy,
    /// The segment directory — anchor keys and arena slots in two dense
    /// SoA arrays. The **only** directory structure: lookups search it
    /// with an interpolation-seeded branchless bounded search, and
    /// structural mutations (segment split/merge/insert/remove) patch
    /// the affected window in place with
    /// [`FlatDirectory::splice`] instead of the retired B+ tree +
    /// O(S) re-mirror.
    pub(crate) dir: FlatDirectory<K>,
    /// Segment arena; slots are recycled through `free`.
    pub(crate) segments: Vec<Option<Segment<K, V>>>,
    pub(crate) free: Vec<usize>,
    pub(crate) len: usize,
    /// Cumulative directory splice operations (structural mutations
    /// applied incrementally since construction).
    pub(crate) splices: u64,
    /// Cumulative `(anchor, slot)` entries written by those splices.
    pub(crate) splice_entries: u64,
    /// Bench-only baseline: when set, every splice is followed by a
    /// from-scratch rebuild of the directory arrays — the retired O(S)
    /// behavior — so the `insert-heavy` hotpath scenario can measure
    /// splice vs rebuild on identical workloads.
    pub(crate) rebuild_baseline: bool,
}

impl<K: Key, V> FitingTree<K, V> {
    /// Starts building an index with the given error budget (in slots).
    ///
    /// Defaults: buffer size `error / 2` (the paper's evaluation split),
    /// binary in-segment search.
    #[must_use]
    pub fn builder(error: u64) -> FitingTreeBuilder {
        FitingTreeBuilder::new(error)
    }

    pub(crate) fn from_parts(
        error: u64,
        buffer_size: u64,
        strategy: SearchStrategy,
    ) -> Result<Self, BuildError> {
        if buffer_size > error || (error > 0 && buffer_size == error) {
            return Err(BuildError::BufferConsumesError { error, buffer_size });
        }
        Ok(FitingTree {
            error,
            buffer_size,
            seg_error: error - buffer_size,
            strategy,
            dir: FlatDirectory::new(),
            segments: Vec::new(),
            free: Vec::new(),
            len: 0,
            splices: 0,
            splice_entries: 0,
            rebuild_baseline: false,
        })
    }

    /// An empty tree sharing `self`'s configuration (error split,
    /// strategy) — the seed for [`split_off`](Self::split_off).
    fn empty_like(&self) -> Self {
        FitingTree::from_parts(self.error, self.buffer_size, self.strategy)
            .expect("configuration was already validated")
    }

    /// Bulk loads strictly increasing `(key, value)` pairs (paper
    /// Section 3): one segmentation pass, then one dense directory
    /// build over the segment anchors.
    pub(crate) fn bulk_load_sorted<I>(mut self, iter: I) -> Result<Self, BuildError>
    where
        I: IntoIterator<Item = (K, V)>,
    {
        let mut data: Vec<(K, V)> = Vec::new();
        for (i, (k, v)) in iter.into_iter().enumerate() {
            if let Some((prev, _)) = data.last() {
                if *prev >= k {
                    return Err(BuildError::UnsortedInput { at: i });
                }
            }
            data.push((k, v));
        }
        if data.is_empty() {
            return Ok(self);
        }
        self.len = data.len();

        // Install pages in the arena and build the directory densely.
        let pages = carve_segments(self.seg_error, data);
        self.segments = Vec::with_capacity(pages.len());
        let mut entries = Vec::with_capacity(pages.len());
        for (i, seg) in pages.into_iter().enumerate() {
            entries.push((seg.start_key, i as u32));
            self.segments.push(Some(seg));
        }
        debug_assert!(self.segments.len() <= u32::MAX as usize);
        self.dir.rebuild(entries);
        Ok(self)
    }

    /// Applies one incremental directory mutation: replaces the
    /// directory window `range` with `entries`, shifting only the tail
    /// — O(entries + shift), the path that retired the per-mutation
    /// O(S) re-mirror of the old B+ tree. Counts toward the splice
    /// statistics; in bench-baseline mode it additionally re-runs the
    /// old from-scratch rebuild so the two costs can be compared on
    /// identical workloads.
    fn splice_directory(&mut self, range: std::ops::Range<usize>, entries: &[(K, u32)]) {
        self.splices += 1;
        self.splice_entries += entries.len() as u64;
        self.dir.splice(range, entries);
        if self.rebuild_baseline {
            self.dir.rebuild_in_place();
        }
    }

    /// Directory position of the segment anchored exactly at `anchor`.
    fn dir_pos_of(&self, anchor: K) -> usize {
        let pos = self
            .dir
            .floor_index(anchor)
            .expect("anchor lookup on non-empty directory");
        debug_assert_eq!(self.dir.anchor_at(pos), anchor);
        pos
    }

    /// Enables (or disables) the bench-only directory-rebuild baseline:
    /// when on, every structural mutation pays the retired O(S)
    /// from-scratch directory rebuild *in addition to* the splice, so
    /// the `insert-heavy` benchmark can measure what the incremental
    /// splice path saves. Not intended for production use.
    pub fn set_directory_rebuild_baseline(&mut self, enabled: bool) {
        self.rebuild_baseline = enabled;
    }

    /// Number of key/value pairs in the index.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured total error budget.
    #[must_use]
    pub fn error(&self) -> u64 {
        self.error
    }

    /// The per-segment insert buffer capacity.
    #[must_use]
    pub fn buffer_size(&self) -> u64 {
        self.buffer_size
    }

    /// The effective segmentation error (`error − buffer_size`).
    #[must_use]
    pub fn segmentation_error(&self) -> u64 {
        self.seg_error
    }

    /// Number of segments (= entries of the flat directory).
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.dir.len()
    }

    /// Locates the arena slot of the segment responsible for `key`:
    /// the floor segment, falling back to the first segment for keys
    /// below every anchor.
    ///
    /// This is the read hot path: it searches the flat SoA directory
    /// (interpolation seed → gallop → branchless binary). There is no
    /// other directory left to descend — the mutation-side B+ tree is
    /// retired.
    #[inline]
    fn locate(&self, key: &K) -> Option<usize> {
        self.locate_traced(key).map(|(slot, _)| slot)
    }

    /// [`locate`](Self::locate) plus the [`DirectoryPath`] marker of
    /// the structure that produced the slot. The marker is attached at
    /// the routing site — each arm of this function names the directory
    /// it actually searched — so any future alternate routing cannot
    /// keep reporting [`DirectoryPath::FlatDirectory`] without the
    /// dishonesty being visible right here, and the trace-level test
    /// in `tests/hotpath_differential.rs` pins the expected value.
    #[inline]
    fn locate_traced(&self, key: &K) -> Option<(usize, DirectoryPath)> {
        self.dir
            .locate(*key)
            .map(|slot| (slot, DirectoryPath::FlatDirectory))
    }

    /// Point lookup (paper Algorithm 3): flat-directory search,
    /// interpolation, bounded local search, buffer check.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<&V> {
        let slot = self.locate(key)?;
        self.segments[slot]
            .as_ref()
            .expect("directory points at live segment")
            .get(*key, self.seg_error, self.strategy)
    }

    /// Mutable point lookup.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let slot = self.locate(key)?;
        self.segments[slot]
            .as_mut()
            .expect("directory points at live segment")
            .get_mut(*key, self.seg_error, self.strategy)
    }

    /// Whether `key` is present.
    #[must_use]
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Instrumented lookup for the Figure 13 breakdown: returns the value
    /// and the time spent in each of the two phases (segment location
    /// vs in-segment search), plus which directory the locate step
    /// reported searching — [`DirectoryPath::FlatDirectory`] on the
    /// current hot path (the internal `locate_traced` step keeps the
    /// marker honest).
    #[must_use]
    pub fn get_traced(&self, key: &K) -> (Option<&V>, LookupTrace) {
        let t0 = Instant::now();
        // Same routing as `get`; the marker reports which directory the
        // locate step searched.
        let located = self.locate_traced(key);
        let tree_nanos = t0.elapsed().as_nanos() as u64;
        let via = located.map_or(DirectoryPath::FlatDirectory, |(_, via)| via);
        let t1 = Instant::now();
        let value = located.and_then(|(s, _)| {
            self.segments[s]
                .as_ref()
                .expect("directory points at live segment")
                .get(*key, self.seg_error, self.strategy)
        });
        let segment_nanos = t1.elapsed().as_nanos() as u64;
        (
            value,
            LookupTrace {
                tree_nanos,
                segment_nanos,
                via,
            },
        )
    }

    /// Inserts `key → value` (paper Algorithm 4), returning the previous
    /// value if the key existed. New keys go to the covering segment's
    /// sorted buffer; a full buffer triggers merge + re-segmentation.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let Some(slot) = self.locate(&key) else {
            // Empty index: open the first segment.
            let slot = self.alloc_slot(Segment::new(key, 0.0, vec![(key, value)]));
            self.splice_directory(0..0, &[(key, slot as u32)]);
            self.len += 1;
            return None;
        };
        let seg = self.segments[slot]
            .as_mut()
            .expect("directory points at live segment");
        let old = seg.insert(key, value, self.seg_error, self.strategy);
        if old.is_some() {
            return old;
        }
        self.len += 1;
        if seg.buffer.len() > self.buffer_size as usize {
            self.resegment(slot);
        }
        None
    }

    /// Removes `key`, returning its value. **Extension over the paper**
    /// (which does not discuss deletes): buffer entries are dropped
    /// directly; page removals are O(1) tombstones (slots keep their
    /// position, so predictions stay exact — the value is cloned out of
    /// the dense page) and trigger re-segmentation once they exceed
    /// half the segmentation budget, so pages shed dead slots and the
    /// lookup bound stays `O(error)`.
    ///
    /// The `V: Clone` bound exists only to extract the value from a
    /// tombstoned page slot (the dense value array keeps the slot until
    /// the next re-segmentation). Non-`Clone` values can use
    /// [`remove_take`](Self::remove_take) (`V: Default`) or
    /// [`remove_replacing`](Self::remove_replacing) (any `V`).
    pub fn remove(&mut self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.remove_with(key, |v| v.clone())
    }

    /// [`remove`](Self::remove) for `V: Default`: the page-resident
    /// value is moved out with `mem::take`, so no `Clone` is needed.
    pub fn remove_take(&mut self, key: &K) -> Option<V>
    where
        V: Default,
    {
        self.remove_with(key, std::mem::take)
    }

    /// [`remove`](Self::remove) for arbitrary `V`: the caller supplies
    /// the placeholder left in the (dead, never-read-again) page slot,
    /// and the stored value is moved out with `mem::replace`.
    pub fn remove_replacing(&mut self, key: &K, placeholder: V) -> Option<V> {
        self.remove_with(key, move |v| std::mem::replace(v, placeholder))
    }

    /// The shared removal path: `extract` pulls the value out of a
    /// tombstoned page slot (clone, take, or replace — buffer hits are
    /// moved out directly and never call it). All structural
    /// consequences (empty-segment drop, tombstone-pressure
    /// re-segmentation) are bound-free.
    fn remove_with(&mut self, key: &K, extract: impl FnOnce(&mut V) -> V) -> Option<V> {
        let slot = self.locate(key)?;
        let seg = self.segments[slot]
            .as_mut()
            .expect("directory points at live segment");
        let removed = seg.remove_with(*key, self.seg_error, self.strategy, extract)?;
        self.len -= 1;
        if seg.len() == 0 {
            // Drop the empty segment entirely (keep at least none: an
            // empty index has an empty directory).
            let anchor = seg.start_key;
            self.segments[slot] = None;
            self.free.push(slot);
            let pos = self.dir_pos_of(anchor);
            self.splice_directory(pos..pos + 1, &[]);
        } else if seg.removed > self.seg_error / 2 {
            self.resegment(slot);
        }
        Some(removed)
    }

    /// Iterator over entries with keys in `range`, in key order.
    #[must_use]
    pub fn range<R: RangeBounds<K>>(&self, range: R) -> RangeIter<'_, K, V> {
        RangeIter::new(self, range)
    }

    /// Iterator over all entries in key order.
    #[must_use]
    pub fn iter(&self) -> RangeIter<'_, K, V> {
        self.range(..)
    }

    /// Index structure size in bytes, following the paper's accounting:
    /// the flat directory arrays + [`SEGMENT_METADATA_BYTES`] per
    /// segment (the retired B+ tree's node bytes are gone). The table
    /// data itself is *not* index overhead (it exists regardless).
    #[must_use]
    pub fn index_size_bytes(&self) -> usize {
        self.dir.size_bytes() + self.segment_count() * SEGMENT_METADATA_BYTES
    }

    /// Full statistics snapshot; walks the directory and arena.
    #[must_use]
    pub fn stats(&self) -> FitingTreeStats {
        let mut buffered = 0usize;
        let mut data_bytes = 0usize;
        let mut live = 0usize;
        for seg in self.segments.iter().flatten() {
            buffered += seg.buffer.len();
            data_bytes += seg.payload_bytes();
            live += 1;
        }
        FitingTreeStats {
            len: self.len,
            segment_count: live,
            flat_directory_bytes: self.dir.size_bytes(),
            index_size_bytes: self.index_size_bytes(),
            data_size_bytes: data_bytes,
            buffered_entries: buffered,
            directory_splices: self.splices,
            directory_splice_entries: self.splice_entries,
            directory_version: self.dir.version(),
            avg_segment_len: if live == 0 {
                0.0
            } else {
                self.len as f64 / live as f64
            },
            error: self.error,
            seg_error: self.seg_error,
            buffer_size: self.buffer_size,
        }
    }

    /// Iterator over keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// Iterator over values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }

    /// First (smallest-key) entry.
    #[must_use]
    pub fn first(&self) -> Option<(&K, &V)> {
        self.iter().next()
    }

    /// Last (largest-key) entry.
    #[must_use]
    pub fn last(&self) -> Option<(&K, &V)> {
        // The last directory entry owns the largest anchor; its page and
        // buffer maxima compete for the global maximum.
        let slot = self.dir.last_slot()?;
        let seg = self.segments[slot]
            .as_ref()
            .expect("directory points at live segment");
        match (seg.last_live(), seg.buffer.last()) {
            (Some((dk, dv)), Some((bk, bv))) => Some(if dk > bk { (dk, dv) } else { (bk, bv) }),
            (Some((dk, dv)), None) => Some((dk, dv)),
            (None, Some((bk, bv))) => Some((bk, bv)),
            (None, None) => None,
        }
    }

    /// Rebuilds the index with a different error budget, consuming the
    /// current one — the DBA retuning knob fed by the cost model's
    /// selectors (pick a new error, then `rebuild`).
    pub fn rebuild(self, error: u64) -> Result<Self, BuildError> {
        let strategy = self.strategy;
        let mut entries: Vec<(K, V)> = Vec::with_capacity(self.len);
        let slots: Vec<usize> = self.dir.entries().map(|(_, slot)| slot).collect();
        let mut segments = self.segments;
        for slot in slots {
            let seg = segments[slot]
                .take()
                .expect("directory points at live segment");
            entries.extend(seg.into_merged());
        }
        FitingTree::from_parts(error, error / 2, strategy)?.bulk_load_sorted(entries)
    }

    /// Merges a segment's page and buffer, re-runs ShrinkingCone over the
    /// merged run, and splices the resulting segment(s) into the
    /// directory window the old segment occupied (paper Algorithm 4,
    /// lines 5–9) — O(merged run + directory tail shift), no tree walk.
    fn resegment(&mut self, slot: usize) {
        let seg = self.segments[slot]
            .take()
            .expect("resegment target is live");
        self.free.push(slot);
        let anchor = seg.start_key;
        let merged = seg.into_merged();
        let pos = self.dir_pos_of(anchor);

        let pieces = carve_segments(self.seg_error, merged);
        let mut entries = Vec::with_capacity(pieces.len());
        for piece in pieces {
            let start_key = piece.start_key;
            let new_slot = self.alloc_slot(piece);
            entries.push((start_key, new_slot as u32));
        }
        self.splice_directory(pos..pos + 1, &entries);
    }

    /// Splits the tree at `at`: every entry with key `>= at` moves into
    /// the returned tree (same configuration), everything below stays.
    ///
    /// Cost is **O(moved segments + one boundary segment)**: whole SoA
    /// pages and their directory span are handed off without
    /// re-segmentation or per-entry copying — only the single segment
    /// straddling `at` (if any) is merged and re-segmented into a left
    /// and a right part. This is what makes
    /// `ShardedIndex::split_shard` over FITing-Tree shards
    /// O(moved-segment-count) instead of O(moved entries × rebuild).
    ///
    /// Degenerate cuts work: `at` below every key moves the whole tree,
    /// `at` above every key returns an empty tree.
    pub fn split_off(&mut self, at: &K) -> FitingTree<K, V> {
        let mut right = self.empty_like();
        if self.dir.is_empty() {
            return right;
        }
        let p = self
            .dir
            .floor_index(*at)
            .expect("directory is non-empty here");
        // Whole segments strictly after the boundary position move
        // as-is: their directory span is split off in one O(moved) cut.
        let tail = self.dir.split_off(p + 1);
        self.splices += 1;
        self.splice_entries += tail.len() as u64;

        // The boundary segment may straddle `at`; only then is it
        // merged and re-segmented into a left and a right side (the
        // only re-segmentation a split ever pays). A cut at or below
        // its minimum key hands it off whole instead — fitted slope
        // and measured envelope intact.
        let bslot = self.dir.slot_at(p);
        let (straddles, moves_whole) = {
            let seg = self.segments[bslot]
                .as_ref()
                .expect("directory points at live segment");
            let covers = seg.max_key().is_some_and(|m| m >= *at);
            let whole = covers && seg.min_key().is_some_and(|m| m >= *at);
            (covers && !whole, whole)
        };
        let mut right_entries: Vec<(K, u32)> = Vec::new();
        if moves_whole {
            let seg = self.segments[bslot]
                .take()
                .expect("directory points at live segment");
            self.free.push(bslot);
            self.len -= seg.len();
            right.len += seg.len();
            let anchor = seg.start_key;
            let slot = right.alloc_slot(seg);
            right_entries.push((anchor, slot as u32));
            self.splice_directory(p..p + 1, &[]);
        }
        if straddles {
            let seg = self.segments[bslot]
                .take()
                .expect("directory points at live segment");
            self.free.push(bslot);
            self.len -= seg.len();
            let mut left_run = seg.into_merged();
            let right_run = left_run.split_off(left_run.partition_point(|(k, _)| k < at));

            self.len += left_run.len();
            let mut left_entries = Vec::new();
            for piece in carve_segments(self.seg_error, left_run) {
                let anchor = piece.start_key;
                let slot = self.alloc_slot(piece);
                left_entries.push((anchor, slot as u32));
            }
            self.splice_directory(p..p + 1, &left_entries);

            right.len += right_run.len();
            for piece in carve_segments(right.seg_error, right_run) {
                let anchor = piece.start_key;
                let slot = right.alloc_slot(piece);
                right_entries.push((anchor, slot as u32));
            }
        }

        // Hand the tail segments over wholesale: arena moves only, no
        // page is touched.
        for (anchor, old_slot) in tail.entries() {
            let seg = self.segments[old_slot]
                .take()
                .expect("directory points at live segment");
            self.free.push(old_slot);
            self.len -= seg.len();
            right.len += seg.len();
            let new_slot = right.alloc_slot(seg);
            right_entries.push((anchor, new_slot as u32));
        }
        right.splices += 1;
        right.splice_entries += right_entries.len() as u64;
        right.dir.rebuild(right_entries);
        right
    }

    /// Absorbs every entry of `other` — all of whose keys must be
    /// strictly greater than every key in `self` — leaving `other`
    /// empty. The symmetric counterpart of
    /// [`split_off`](Self::split_off): `other`'s segments (pages,
    /// buffers, fitted slopes and measured error envelopes intact) move
    /// into `self`'s arena and their directory span is appended with
    /// one splice — **O(moved segments)**, no re-segmentation and no
    /// per-entry copying.
    ///
    /// Returns the number of entries moved.
    ///
    /// # Errors
    ///
    /// * [`AbsorbError::ConfigMismatch`] when the two trees disagree on
    ///   error budget or buffer split (moved segments would carry
    ///   envelopes the absorbing tree's search window could clip).
    /// * [`AbsorbError::KeyOverlap`] when `other` holds a key `<=`
    ///   `self`'s maximum (the runs cannot be concatenated).
    ///
    /// Either error leaves both trees untouched.
    pub fn absorb(&mut self, other: &mut FitingTree<K, V>) -> Result<usize, AbsorbError> {
        if self.error != other.error || self.buffer_size != other.buffer_size {
            return Err(AbsorbError::ConfigMismatch);
        }
        if other.is_empty() {
            return Ok(0);
        }
        let moved = other.len;
        let mut reinserts: Vec<(K, V)> = Vec::new();
        if !self.is_empty() {
            let self_max = *self.last().expect("non-empty tree has a last entry").0;
            let other_min = *other.first().expect("non-empty tree has a first entry").0;
            if other_min <= self_max {
                return Err(AbsorbError::KeyOverlap);
            }
            // Only `other`'s *first* segment may hold buffered keys
            // below its anchor; after the append those keys would route
            // to `self`'s last segment instead. Drain them here and
            // re-insert through the normal path after the handoff.
            let first_slot = other.dir.slot_at(0);
            let seg = other.segments[first_slot]
                .as_mut()
                .expect("directory points at live segment");
            let below = seg.buffer.partition_point(|(k, _)| *k < seg.start_key);
            reinserts.extend(seg.buffer.drain(..below));
        }

        let mut entries: Vec<(K, u32)> = Vec::with_capacity(other.dir.len());
        for (anchor, old_slot) in other.dir.entries() {
            let seg = other.segments[old_slot]
                .take()
                .expect("directory points at live segment");
            if seg.len() == 0 {
                // The drain above emptied it; nothing left to move.
                continue;
            }
            let new_slot = self.alloc_slot(seg);
            entries.push((anchor, new_slot as u32));
        }
        let n = self.dir.len();
        self.len += moved - reinserts.len();
        self.splice_directory(n..n, &entries);

        // Reset `other` to a clean empty tree (its config survives).
        other.dir.rebuild(std::iter::empty());
        other.segments.clear();
        other.free.clear();
        other.len = 0;

        for (k, v) in reinserts {
            self.insert(k, v);
        }
        Ok(moved)
    }

    fn alloc_slot(&mut self, seg: Segment<K, V>) -> usize {
        if let Some(slot) = self.free.pop() {
            self.segments[slot] = Some(seg);
            slot
        } else {
            self.segments.push(Some(seg));
            self.segments.len() - 1
        }
    }

    /// Verifies structural invariants; used by tests.
    ///
    /// With the mutation-side B+ tree retired there is no mirror to
    /// compare against: coherence is checked **directly between the
    /// flat directory and the segment run**. Checks: directory anchors
    /// are strictly ascending and point at live arena segments
    /// registered under their anchor; every live arena segment is
    /// referenced exactly once (and free-list slots are dead); segment
    /// pages and buffers are sorted; every live page key is found by a
    /// windowed lookup (the error guarantee) *and* located to its
    /// segment by the directory; `len` consistency; segments are
    /// disjoint and ordered.
    pub fn check_invariants(&self) -> Result<(), String> {
        let live_slots = self.segments.iter().filter(|s| s.is_some()).count();
        if live_slots != self.dir.len() {
            return Err(format!(
                "directory has {} entries but the arena holds {live_slots} live segments",
                self.dir.len()
            ));
        }
        for &slot in &self.free {
            if self
                .segments
                .get(slot)
                .is_none_or(std::option::Option::is_some)
            {
                return Err(format!(
                    "free-list names slot {slot}, which is live or out of range"
                ));
            }
        }
        let mut counted = 0usize;
        let mut prev_anchor: Option<K> = None;
        let mut prev_max: Option<K> = None;
        let mut first = true;
        for (anchor, slot) in self.dir.entries() {
            if let Some(prev) = prev_anchor {
                if prev >= anchor {
                    return Err(format!(
                        "directory anchors not strictly ascending: {prev:?} then {anchor:?}"
                    ));
                }
            }
            prev_anchor = Some(anchor);
            let seg = self
                .segments
                .get(slot)
                .and_then(|s| s.as_ref())
                .ok_or_else(|| format!("directory entry {anchor:?} points at dead slot {slot}"))?;
            if seg.start_key != anchor {
                return Err(format!(
                    "segment anchored at {anchor:?} believes its start is {:?}",
                    seg.start_key
                ));
            }
            if !seg.keys.windows(2).all(|w| w[0] < w[1]) {
                return Err("unsorted segment page".into());
            }
            if seg.keys.len() != seg.values.len() {
                return Err("page keys/values length mismatch".into());
            }
            let dead = (0..seg.keys.len()).filter(|&i| !seg.is_live(i)).count();
            if seg.removed as usize != dead {
                return Err("tombstone count diverged from bitmap".into());
            }
            if !seg.buffer.windows(2).all(|w| w[0].0 < w[1].0) {
                return Err("unsorted segment buffer".into());
            }
            if seg.buffer.len() > self.buffer_size as usize + 1 {
                return Err(format!(
                    "buffer over capacity: {} > {}",
                    seg.buffer.len(),
                    self.buffer_size
                ));
            }
            if let (Some(min), Some(prev)) = (seg.min_key(), prev_max) {
                // Only the first segment may hold keys below its anchor.
                if !first && min <= prev {
                    return Err(format!(
                        "segment overlap: min {min:?} <= previous max {prev:?}"
                    ));
                }
            }
            for (i, k) in seg.keys.iter().enumerate() {
                if !seg.is_live(i) {
                    continue; // tombstoned slot: invisible to lookups
                }
                if seg.get(*k, self.seg_error, self.strategy).is_none() {
                    return Err(format!(
                        "error guarantee violated: page key {k:?} not found within window"
                    ));
                }
                if self.dir.locate(*k) != Some(slot) {
                    return Err(format!(
                        "flat directory routes live key {k:?} away from its segment"
                    ));
                }
            }
            for (k, _) in &seg.buffer {
                if self.dir.locate(*k) != Some(slot) {
                    return Err(format!(
                        "flat directory routes buffered key {k:?} away from its segment"
                    ));
                }
            }
            counted += seg.len();
            prev_max = seg.max_key().or(prev_max);
            first = false;
        }
        if counted != self.len {
            return Err(format!(
                "len mismatch: counted {counted}, recorded {}",
                self.len
            ));
        }
        Ok(())
    }
}

/// Runs ShrinkingCone over a sorted `(key, value)` run and carves it
/// into per-segment SoA pages — the one segmentation pass shared by
/// bulk load, re-segmentation, and the boundary-segment split.
fn carve_segments<K: Key, V>(seg_error: u64, run: Vec<(K, V)>) -> Vec<Segment<K, V>> {
    if run.is_empty() {
        return Vec::new();
    }
    let mut sc = ShrinkingCone::new(seg_error);
    let mut plr_segs = Vec::new();
    for (pos, (k, _)) in run.iter().enumerate() {
        if let Some(seg) = sc.push(Point::new(k.to_f64(), pos as u64)) {
            plr_segs.push(seg);
        }
    }
    if let Some(seg) = sc.finish() {
        plr_segs.push(seg);
    }

    // Carve back to front so each split_off is O(segment length).
    let mut rest = run;
    let mut pages: Vec<Segment<K, V>> = Vec::with_capacity(plr_segs.len());
    for ls in plr_segs.iter().rev() {
        let page = rest.split_off(ls.start_pos as usize);
        let start_key = page[0].0;
        pages.push(Segment::new(start_key, ls.slope, page));
    }
    pages.reverse();
    pages
}

impl<K: Key, V: std::fmt::Debug> std::fmt::Debug for FitingTree<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FitingTree")
            .field("len", &self.len)
            .field("error", &self.error)
            .field("segments", &self.segment_count())
            .finish()
    }
}

impl<K: Key, V: Clone> fiting_index_api::SortedIndex<K, V> for FitingTree<K, V> {
    type RangeIter<'a>
        = std::iter::Map<crate::range::RangeIter<'a, K, V>, fn((&'a K, &'a V)) -> (K, V)>
    where
        Self: 'a,
        K: 'a,
        V: 'a;

    fn name(&self) -> &'static str {
        "FITing-Tree"
    }

    fn get(&self, key: &K) -> Option<&V> {
        FitingTree::get(self, key)
    }

    fn insert(&mut self, key: K, value: V) -> Option<V> {
        FitingTree::insert(self, key, value)
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        FitingTree::remove(self, key)
    }

    fn len(&self) -> usize {
        FitingTree::len(self)
    }

    fn size_bytes(&self) -> usize {
        FitingTree::index_size_bytes(self)
    }

    fn range<R: std::ops::RangeBounds<K>>(&self, range: R) -> Self::RangeIter<'_> {
        FitingTree::range(self, range).map(fiting_index_api::clone_pair as fn((&K, &V)) -> (K, V))
    }

    /// Native run handoff: `ShardedIndex::split_shard` over FITing-Tree
    /// shards moves whole segments in O(moved segments) instead of
    /// copying and re-segmenting every entry.
    fn split_off_tail(&mut self, at: &K) -> Option<Self> {
        Some(FitingTree::split_off(self, at))
    }

    /// Native append: `ShardedIndex::merge_with_next` hands the right
    /// shard's segment run over without re-segmentation. Falls back
    /// (returning `false`, touching nothing) on config mismatch or key
    /// overlap, which the sharded layer resolves with the generic
    /// copy path.
    fn absorb_tail(&mut self, other: &mut Self) -> bool {
        FitingTree::absorb(self, other).is_ok()
    }
}

impl<K: Key, V: Clone> fiting_index_api::BuildableIndex<K, V> for FitingTree<K, V> {
    type Config = crate::builder::FitingTreeBuilder;
    type BuildError = crate::error::BuildError;

    fn build_sorted(
        config: &Self::Config,
        sorted: Vec<(K, V)>,
    ) -> Result<Self, crate::error::BuildError> {
        config.clone().bulk_load(sorted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FitingTreeBuilder;

    fn build(n: u64, error: u64) -> FitingTree<u64, u64> {
        FitingTreeBuilder::new(error)
            .bulk_load((0..n).map(|k| (k * 7, k)))
            .unwrap()
    }

    #[test]
    fn bulk_load_and_get_all() {
        let t = build(10_000, 32);
        assert_eq!(t.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(t.get(&(k * 7)), Some(&k), "key {}", k * 7);
            assert_eq!(t.get(&(k * 7 + 1)), None);
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn empty_index() {
        let t: FitingTree<u64, u64> = FitingTreeBuilder::new(16).build_empty().unwrap();
        assert!(t.is_empty());
        assert_eq!(t.get(&1), None);
        assert_eq!(t.iter().count(), 0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn bulk_load_rejects_unsorted() {
        let err = FitingTree::<u64, u64>::builder(16)
            .bulk_load([(3, 0), (2, 0)])
            .unwrap_err();
        assert!(matches!(err, BuildError::UnsortedInput { at: 1 }));
    }

    #[test]
    fn linear_keys_make_one_segment() {
        let t = build(100_000, 16);
        assert_eq!(t.segment_count(), 1);
        // The directory is then a single leaf.
        assert!(t.index_size_bytes() < 200);
    }

    #[test]
    fn error_controls_segment_count_on_curvy_data() {
        let keys: Vec<u64> = (0..50_000u64).map(|k| k * k / 64).collect();
        let mut dedup = keys;
        dedup.dedup();
        let pairs: Vec<(u64, u64)> = dedup.iter().map(|&k| (k, k)).collect();
        let tight = FitingTreeBuilder::new(8).bulk_load(pairs.clone()).unwrap();
        let loose = FitingTreeBuilder::new(512).bulk_load(pairs).unwrap();
        assert!(tight.segment_count() > loose.segment_count());
        tight.check_invariants().unwrap();
        loose.check_invariants().unwrap();
    }

    #[test]
    fn insert_then_get() {
        let mut t = build(1_000, 64);
        assert_eq!(t.insert(7 * 500 + 1, 9999), None);
        assert_eq!(t.get(&(7 * 500 + 1)), Some(&9999));
        assert_eq!(t.len(), 1001);
        // Replacement returns the old value and does not grow the index.
        assert_eq!(t.insert(7 * 500 + 1, 1), Some(9999));
        assert_eq!(t.len(), 1001);
        t.check_invariants().unwrap();
    }

    #[test]
    fn inserts_below_global_minimum() {
        let mut t = FitingTreeBuilder::new(16)
            .bulk_load((100..200u64).map(|k| (k, k)))
            .unwrap();
        t.insert(5, 55);
        t.insert(1, 11);
        assert_eq!(t.get(&5), Some(&55));
        assert_eq!(t.get(&1), Some(&11));
        assert_eq!(t.range(..).next().map(|(k, _)| *k), Some(1));
        t.check_invariants().unwrap();
    }

    #[test]
    fn buffer_overflow_triggers_resegmentation() {
        let mut t = FitingTreeBuilder::new(16)
            .buffer_size(4)
            .bulk_load((0..1000u64).map(|k| (k * 10, k)))
            .unwrap();
        let before = t.segment_count();
        // Flood one region with inserts to overflow its buffer.
        for k in 0..100u64 {
            t.insert(5000 + k * 2 + 1, k);
        }
        assert_eq!(t.len(), 1100);
        for k in 0..100u64 {
            assert_eq!(t.get(&(5000 + k * 2 + 1)), Some(&k));
        }
        // Everything originally present is still there.
        for k in 0..1000u64 {
            assert_eq!(t.get(&(k * 10)), Some(&k));
        }
        assert!(t.segment_count() >= before);
        t.check_invariants().unwrap();
    }

    #[test]
    fn monotonic_append_workload() {
        let mut t: FitingTree<u64, u64> = FitingTreeBuilder::new(32).build_empty().unwrap();
        for k in 0..5_000u64 {
            t.insert(k, k);
        }
        assert_eq!(t.len(), 5_000);
        for k in (0..5_000u64).step_by(97) {
            assert_eq!(t.get(&k), Some(&k));
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_roundtrip_and_window_widening() {
        let mut t = build(2_000, 16);
        for k in (0..2_000u64).step_by(3) {
            assert_eq!(t.remove(&(k * 7)), Some(k), "removing {}", k * 7);
        }
        for k in 0..2_000u64 {
            let expect = if k % 3 == 0 { None } else { Some(&k) };
            let expect = expect.copied();
            assert_eq!(t.get(&(k * 7)).copied(), expect, "key {}", k * 7);
        }
        assert_eq!(t.len(), 2_000 - 2_000_usize.div_ceil(3));
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_everything_leaves_clean_index() {
        let mut t = build(500, 8);
        for k in 0..500u64 {
            assert_eq!(t.remove(&(k * 7)), Some(k));
        }
        assert!(t.is_empty());
        assert_eq!(t.segment_count(), 0);
        // And it accepts new data afterwards.
        t.insert(1, 1);
        assert_eq!(t.get(&1), Some(&1));
        t.check_invariants().unwrap();
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t = build(100, 8);
        *t.get_mut(&7).unwrap() = 12345;
        assert_eq!(t.get(&7), Some(&12345));
        assert!(t.get_mut(&8).is_none());
    }

    #[test]
    fn get_traced_phases_sum_to_a_lookup() {
        let t = build(10_000, 64);
        let (v, trace) = t.get_traced(&(7 * 1234));
        assert_eq!(v, Some(&1234));
        // Both phases took *some* time; this is an instrumentation smoke
        // test, not a benchmark.
        assert!(trace.tree_nanos + trace.segment_nanos > 0);
    }

    #[test]
    fn stats_are_consistent() {
        let t = build(10_000, 32);
        let s = t.stats();
        assert_eq!(s.len, 10_000);
        assert_eq!(s.segment_count, t.segment_count());
        assert_eq!(s.error, 32);
        assert_eq!(s.buffer_size, 16);
        assert_eq!(s.seg_error, 16);
        assert!(s.index_size_bytes < s.data_size_bytes);
        assert!(s.avg_segment_len > 1.0);
    }

    #[test]
    fn search_strategies_agree() {
        let pairs: Vec<(u64, u64)> = (0..5_000u64).map(|k| (k * 3 + k % 5, k)).collect();
        let mut sorted = pairs;
        sorted.sort();
        sorted.dedup_by_key(|p| p.0);
        for strategy in [
            SearchStrategy::Binary,
            SearchStrategy::Linear,
            SearchStrategy::Exponential,
            SearchStrategy::Interpolation,
        ] {
            let t = FitingTreeBuilder::new(32)
                .search_strategy(strategy)
                .bulk_load(sorted.clone())
                .unwrap();
            for (k, v) in sorted.iter().step_by(53) {
                assert_eq!(t.get(k), Some(v), "{strategy:?}");
            }
        }
    }

    #[test]
    fn keys_values_first_last() {
        let mut t = build(1_000, 32);
        assert_eq!(t.first().map(|(k, _)| *k), Some(0));
        assert_eq!(t.last().map(|(k, _)| *k), Some(999 * 7));
        assert_eq!(t.keys().count(), 1_000);
        assert_eq!(t.values().next(), Some(&0));
        // A buffered key beyond the last page key becomes the new last.
        t.insert(999 * 7 + 5, 123);
        assert_eq!(t.last(), Some((&(999 * 7 + 5), &123)));
        let empty: FitingTree<u64, u64> = FitingTreeBuilder::new(8).build_empty().unwrap();
        assert_eq!(empty.first(), None);
        assert_eq!(empty.last(), None);
    }

    #[test]
    fn rebuild_changes_error_and_keeps_data() {
        let mut t = build(5_000, 8);
        for k in 0..100u64 {
            t.insert(k * 7 + 3, k);
        }
        let before_segments = t.segment_count();
        let len = t.len();
        let rebuilt = t.rebuild(1024).unwrap();
        assert_eq!(rebuilt.len(), len);
        assert_eq!(rebuilt.error(), 1024);
        assert!(rebuilt.segment_count() < before_segments);
        for k in 0..100u64 {
            assert_eq!(rebuilt.get(&(k * 7 + 3)), Some(&k));
        }
        rebuilt.check_invariants().unwrap();
    }

    #[test]
    fn remove_take_and_replacing_work_for_non_clone_values() {
        #[derive(Debug, Default, PartialEq)]
        struct Blob(String); // deliberately !Clone
        let mut t: FitingTree<u64, Blob> = FitingTreeBuilder::new(16).build_empty().unwrap();
        for k in 0..200u64 {
            t.insert(k * 3, Blob(format!("v{k}")));
        }
        assert_eq!(t.remove_take(&30), Some(Blob("v10".into())));
        assert_eq!(t.get(&30), None);
        assert_eq!(
            t.remove_replacing(&60, Blob("tombstone".into())),
            Some(Blob("v20".into()))
        );
        assert_eq!(t.get(&60), None);
        assert_eq!(t.remove_take(&61), None);
        assert_eq!(t.len(), 198);
        t.check_invariants().unwrap();
    }

    #[test]
    fn splice_counters_track_structural_mutations() {
        let mut t = build(1_000, 16);
        let s0 = t.stats();
        assert_eq!(s0.directory_splices, 0, "bulk load is a dense rebuild");
        // Force at least one re-segmentation.
        for k in 0..200u64 {
            t.insert(k * 7 + 1, k);
        }
        let s1 = t.stats();
        assert!(s1.directory_splices > 0);
        assert!(s1.directory_splice_entries >= s1.directory_splices);
        t.check_invariants().unwrap();
    }

    #[test]
    fn split_off_moves_upper_run_without_resegmenting() {
        let mut t = build(10_000, 32);
        let segs_before = t.segment_count();
        let at = 7 * 6_000;
        let right = t.split_off(&at);
        assert_eq!(t.len() + right.len(), 10_000);
        assert_eq!(right.len(), 4_000);
        // Whole-run handoff: total segment count grows by at most the
        // re-segmentation of the single boundary segment.
        assert!(t.segment_count() + right.segment_count() <= segs_before + 4);
        for k in 0..10_000u64 {
            let key = k * 7;
            if key < at {
                assert_eq!(t.get(&key), Some(&k), "left {key}");
                assert_eq!(right.get(&key), None, "right must not hold {key}");
            } else {
                assert_eq!(right.get(&key), Some(&k), "right {key}");
                assert_eq!(t.get(&key), None, "left must not hold {key}");
            }
        }
        t.check_invariants().unwrap();
        right.check_invariants().unwrap();
    }

    #[test]
    fn split_at_segment_anchor_hands_boundary_off_whole() {
        // A cut exactly at a segment's first key must not merge and
        // re-carve that segment: every key in it is >= the cut, so the
        // page moves intact and the total segment count is preserved.
        let t = FitingTreeBuilder::new(8)
            .bulk_load((0..20_000u64).map(|k| (k * k / 8 + k, k)))
            .unwrap();
        let before = t.segment_count();
        assert!(before > 10);
        // Pick a mid-directory anchor as the cut.
        let anchor = t.dir.entries().nth(before / 2).map(|(a, _)| a).unwrap();
        let mut left = t.clone();
        let right = left.split_off(&anchor);
        assert_eq!(
            left.segment_count() + right.segment_count(),
            before,
            "anchor cut must not re-segment the boundary"
        );
        assert_eq!(left.len() + right.len(), t.len());
        assert_eq!(right.first().map(|(k, _)| *k), Some(anchor));
        left.check_invariants().unwrap();
        right.check_invariants().unwrap();
    }

    #[test]
    fn split_off_degenerate_cuts() {
        // Below every key: everything moves.
        let mut t = build(500, 16);
        let right = t.split_off(&0);
        assert!(t.is_empty());
        assert_eq!(right.len(), 500);
        t.check_invariants().unwrap();
        right.check_invariants().unwrap();

        // Above every key: nothing moves.
        let mut t = build(500, 16);
        let right = t.split_off(&u64::MAX);
        assert_eq!(t.len(), 500);
        assert!(right.is_empty());
        t.check_invariants().unwrap();
        right.check_invariants().unwrap();

        // Empty tree.
        let mut t: FitingTree<u64, u64> = FitingTreeBuilder::new(16).build_empty().unwrap();
        assert!(t.split_off(&5).is_empty());
    }

    #[test]
    fn split_off_with_buffered_entries_across_the_cut() {
        let mut t = FitingTreeBuilder::new(64)
            .bulk_load((0..2_000u64).map(|k| (k * 10, k)))
            .unwrap();
        // Buffered inserts on both sides of the future cut.
        for k in 0..400u64 {
            t.insert(k * 50 + 3, 900_000 + k);
        }
        let len = t.len();
        let right = t.split_off(&9_999);
        assert_eq!(t.len() + right.len(), len);
        for k in 0..400u64 {
            let key = k * 50 + 3;
            let side = if key >= 9_999 { &right } else { &t };
            assert_eq!(side.get(&key), Some(&(900_000 + k)), "buffered {key}");
        }
        t.check_invariants().unwrap();
        right.check_invariants().unwrap();
    }

    #[test]
    fn absorb_appends_disjoint_run_in_place() {
        let mut left = build(3_000, 32); // keys 0..21_000 step 7
        let mut right: FitingTree<u64, u64> = FitingTreeBuilder::new(32)
            .bulk_load((0..2_000u64).map(|k| (30_000 + k * 5, k)))
            .unwrap();
        let right_segs = right.segment_count();
        let left_segs = left.segment_count();
        let moved = left.absorb(&mut right).unwrap();
        assert_eq!(moved, 2_000);
        assert!(right.is_empty());
        assert_eq!(left.len(), 5_000);
        // Pure handoff: segment counts just add.
        assert_eq!(left.segment_count(), left_segs + right_segs);
        for k in 0..2_000u64 {
            assert_eq!(left.get(&(30_000 + k * 5)), Some(&k));
        }
        assert_eq!(left.get(&(3_000 * 7 - 7)), Some(&2_999));
        left.check_invariants().unwrap();
        right.check_invariants().unwrap();
        // The drained tree is reusable.
        right.insert(1, 1);
        assert_eq!(right.get(&1), Some(&1));
    }

    #[test]
    fn absorb_rejects_overlap_and_config_mismatch() {
        let mut left = build(100, 32);
        let mut overlapping = build(100, 32);
        assert_eq!(
            left.absorb(&mut overlapping),
            Err(crate::error::AbsorbError::KeyOverlap)
        );
        assert_eq!(overlapping.len(), 100, "failed absorb must not drain");

        let mut other_cfg: FitingTree<u64, u64> = FitingTreeBuilder::new(64)
            .bulk_load((10_000..10_100u64).map(|k| (k, k)))
            .unwrap();
        assert_eq!(
            left.absorb(&mut other_cfg),
            Err(crate::error::AbsorbError::ConfigMismatch)
        );
        assert_eq!(other_cfg.len(), 100);
        left.check_invariants().unwrap();
    }

    #[test]
    fn split_then_absorb_round_trips() {
        let mut t = build(5_000, 16);
        for k in 0..300u64 {
            t.insert(k * 35 + 2, k);
        }
        let model: Vec<(u64, u64)> = t.iter().map(|(k, v)| (*k, *v)).collect();
        // Split at a key that is *not* stored, so the right tree's first
        // anchor sits above the cut...
        let at = 7 * 2_500 + 3;
        let mut right = t.split_off(&at);
        assert!(!model.iter().any(|&(k, _)| k == at));
        // ...then insert the cut key itself: it lands *below* the first
        // anchor in the right tree's first-segment buffer, exercising
        // absorb's drain-and-reinsert path.
        right.insert(at, 424_242);
        t.absorb(&mut right).unwrap();
        assert_eq!(t.get(&at), Some(&424_242));
        let mut want = model;
        want.push((at, 424_242));
        want.sort_unstable();
        let got: Vec<(u64, u64)> = t.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, want);
        t.check_invariants().unwrap();
    }

    #[test]
    fn zero_error_still_works() {
        // error 0 → buffer 0 → every insert re-segments immediately.
        let mut t = FitingTreeBuilder::new(0)
            .bulk_load((0..100u64).map(|k| (k * 2, k)))
            .unwrap();
        for k in 0..100u64 {
            assert_eq!(t.get(&(k * 2)), Some(&k));
        }
        t.insert(51, 999);
        assert_eq!(t.get(&51), Some(&999));
        t.check_invariants().unwrap();
    }
}
