//! Write-optimized delta-main layering — the extension the paper
//! sketches at the end of Section 5: *"if the write-rate is very high,
//! we could also support merging algorithms that use a second buffer
//! similar to how column stores merge a write-optimized delta to the
//! main compressed column."*
//!
//! [`DeltaFitingTree`] keeps a small ordered **delta** (a standard
//! ordered map, fast to insert into) in front of a bulk-loaded **main**
//! FITing-Tree. Writes land in the delta in O(log d); reads consult the
//! delta first (deletes are tombstones there); when the delta exceeds
//! its budget, one merge pass rebuilds the main index — a single bulk
//! load instead of thousands of per-segment re-segmentations.
//!
//! Compared to the per-segment buffers of the base [`FitingTree`]:
//! per-segment buffers keep the error guarantee exact and localized but
//! pay a merge whenever any one segment's buffer fills; the delta-main
//! scheme batches *all* writes into one merge and keeps the main index
//! maximally compressed, at the cost of one extra (small, cache-warm)
//! tree probe per lookup.

use crate::builder::FitingTreeBuilder;
use crate::clustered::FitingTree;
use crate::error::BuildError;
use crate::key::Key;
use std::collections::BTreeMap;

/// Per-entry byte estimate for the delta map's node overhead in the
/// Section 6.2 accounting (key + pending value + amortized tree-node
/// bookkeeping). `std::collections::BTreeMap` does not expose its node
/// layout, so this mirrors the convention the retired in-house B+ tree
/// used: payload plus a pointer-sized overhead per entry.
const DELTA_ENTRY_OVERHEAD_BYTES: usize = 16;

/// Delta entry: a pending upsert or a tombstone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending<V> {
    Put(V),
    Delete,
}

/// A FITing-Tree behind a write-optimized delta buffer.
///
/// ```
/// use fiting_tree::{DeltaFitingTree, FitingTreeBuilder};
///
/// let mut idx = DeltaFitingTree::bulk_load(
///     FitingTreeBuilder::new(64),
///     (0..100_000u64).map(|k| (k * 2, k)),
///     4_096, // delta budget before an automatic merge
/// ).unwrap();
///
/// idx.insert(1_001, 42);        // goes to the delta
/// idx.remove(&0);               // tombstone in the delta
/// assert_eq!(idx.get(&1_001), Some(&42));
/// assert_eq!(idx.get(&0), None);
/// idx.merge().unwrap();         // fold the delta into the main index
/// assert_eq!(idx.get(&1_001), Some(&42));
/// ```
pub struct DeltaFitingTree<K: Key, V> {
    main: FitingTree<K, V>,
    delta: BTreeMap<K, Pending<V>>,
    delta_budget: usize,
    /// Live entries (main ∪ delta, tombstones applied).
    len: usize,
}

impl<K: Key, V: Clone> DeltaFitingTree<K, V> {
    /// Bulk loads the main index and arms an empty delta.
    ///
    /// `delta_budget` is the number of pending entries that triggers an
    /// automatic [`merge`](Self::merge) (0 disables auto-merge).
    pub fn bulk_load<I>(
        builder: FitingTreeBuilder,
        pairs: I,
        delta_budget: usize,
    ) -> Result<Self, BuildError>
    where
        I: IntoIterator<Item = (K, V)>,
    {
        let main = builder.bulk_load(pairs)?;
        let len = main.len();
        Ok(DeltaFitingTree {
            main,
            delta: BTreeMap::new(),
            delta_budget,
            len,
        })
    }

    /// Live entries (tombstones excluded).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no live entries remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pending delta entries (upserts + tombstones).
    #[must_use]
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// Point lookup: delta first (newest wins), then the main index.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<&V> {
        match self.delta.get(key) {
            Some(Pending::Put(v)) => Some(v),
            Some(Pending::Delete) => None,
            None => self.main.get(key),
        }
    }

    /// Upserts through the delta. Returns the shadowed value, if the key
    /// was previously visible.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let shadowed = self.get(&key).cloned();
        if shadowed.is_none() {
            self.len += 1;
        }
        self.delta.insert(key, Pending::Put(value));
        self.maybe_merge();
        shadowed
    }

    /// Deletes through a tombstone. Returns the removed value, if the
    /// key was visible.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let visible = self.get(key).cloned()?;
        self.len -= 1;
        if self.main.contains_key(key) {
            self.delta.insert(*key, Pending::Delete);
        } else {
            // Key only ever lived in the delta: drop the pending put.
            self.delta.remove(key);
        }
        self.maybe_merge();
        Some(visible)
    }

    fn maybe_merge(&mut self) {
        if self.delta_budget > 0 && self.delta.len() >= self.delta_budget {
            self.merge()
                .expect("merge preserves configuration validity");
        }
    }

    /// Folds the delta into the main index with one merge + bulk load
    /// (the column-store merge step).
    pub fn merge(&mut self) -> Result<(), BuildError> {
        if self.delta.is_empty() {
            return Ok(());
        }
        let delta: Vec<(K, Pending<V>)> = std::mem::take(&mut self.delta).into_iter().collect();
        let main = std::mem::replace(&mut self.main, FitingTreeBuilder::new(1).build_empty()?);
        let error = main.error();
        let strategy_builder = FitingTreeBuilder::new(error);

        // Two-way sorted merge: delta entries win; tombstones drop.
        let mut out: Vec<(K, V)> = Vec::with_capacity(self.len);
        let mut main_iter = main.iter().map(|(k, v)| (*k, v.clone())).peekable();
        let mut delta_iter = delta.into_iter().peekable();
        loop {
            match (main_iter.peek(), delta_iter.peek()) {
                (Some((mk, _)), Some((dk, _))) => {
                    if mk < dk {
                        out.push(main_iter.next().expect("peeked"));
                    } else {
                        if mk == dk {
                            main_iter.next(); // shadowed by the delta
                        }
                        match delta_iter.next().expect("peeked") {
                            (k, Pending::Put(v)) => out.push((k, v)),
                            (_, Pending::Delete) => {}
                        }
                    }
                }
                (Some(_), None) => out.push(main_iter.next().expect("peeked")),
                (None, Some(_)) => match delta_iter.next().expect("peeked") {
                    (k, Pending::Put(v)) => out.push((k, v)),
                    (_, Pending::Delete) => {}
                },
                (None, None) => break,
            }
        }
        drop(main_iter);
        debug_assert_eq!(out.len(), self.len);
        self.main = strategy_builder.bulk_load(out)?;
        Ok(())
    }

    /// Read access to the main (merged) index, e.g. for stats.
    #[must_use]
    pub fn main(&self) -> &FitingTree<K, V> {
        &self.main
    }

    /// Ordered scan over the live entries with keys in `range` (delta
    /// overlaid on main, tombstones applied).
    pub fn range<R: std::ops::RangeBounds<K>>(
        &self,
        range: R,
    ) -> impl Iterator<Item = (K, V)> + '_ {
        let lo = range.start_bound().cloned();
        let hi = range.end_bound().cloned();
        let mut main_iter = self.main.range((lo, hi)).peekable();
        let mut delta_iter = self.delta.range((lo, hi)).peekable();
        std::iter::from_fn(move || loop {
            match (main_iter.peek(), delta_iter.peek()) {
                (Some(&(mk, _)), Some(&(dk, _))) => {
                    if mk < dk {
                        let (k, v) = main_iter.next().expect("peeked");
                        return Some((*k, v.clone()));
                    }
                    if mk == dk {
                        main_iter.next(); // shadowed
                    }
                    match delta_iter.next().expect("peeked") {
                        (k, Pending::Put(v)) => return Some((*k, v.clone())),
                        (_, Pending::Delete) => continue,
                    }
                }
                (Some(_), None) => {
                    let (k, v) = main_iter.next().expect("peeked");
                    return Some((*k, v.clone()));
                }
                (None, Some(_)) => match delta_iter.next().expect("peeked") {
                    (k, Pending::Put(v)) => return Some((*k, v.clone())),
                    (_, Pending::Delete) => continue,
                },
                (None, None) => return None,
            }
        })
    }

    /// Ordered scan over the live entries (delta overlaid on main).
    pub fn iter(&self) -> impl Iterator<Item = (K, V)> + '_ {
        let mut main_iter = self.main.iter().peekable();
        let mut delta_iter = self.delta.iter().peekable();
        std::iter::from_fn(move || loop {
            match (main_iter.peek(), delta_iter.peek()) {
                (Some(&(mk, _)), Some(&(dk, _))) => {
                    if mk < dk {
                        let (k, v) = main_iter.next().expect("peeked");
                        return Some((*k, v.clone()));
                    }
                    if mk == dk {
                        main_iter.next(); // shadowed
                    }
                    match delta_iter.next().expect("peeked") {
                        (k, Pending::Put(v)) => return Some((*k, v.clone())),
                        (_, Pending::Delete) => continue,
                    }
                }
                (Some(_), None) => {
                    let (k, v) = main_iter.next().expect("peeked");
                    return Some((*k, v.clone()));
                }
                (None, Some(_)) => match delta_iter.next().expect("peeked") {
                    (k, Pending::Put(v)) => return Some((*k, v.clone())),
                    (_, Pending::Delete) => continue,
                },
                (None, None) => return None,
            }
        })
    }
}

/// Build parameters for a [`DeltaFitingTree`] behind the generic
/// [`BuildableIndex`](fiting_index_api::BuildableIndex) interface.
#[derive(Debug, Clone)]
pub struct DeltaConfig {
    /// Configuration for the main FITing-Tree.
    pub builder: FitingTreeBuilder,
    /// Pending entries that trigger an automatic merge (0 disables).
    pub delta_budget: usize,
}

impl DeltaConfig {
    /// Main index with error budget `error`, auto-merging every
    /// `delta_budget` pending writes.
    #[must_use]
    pub fn new(error: u64, delta_budget: usize) -> Self {
        DeltaConfig {
            builder: FitingTreeBuilder::new(error),
            delta_budget,
        }
    }
}

impl<K: Key, V: Clone> fiting_index_api::SortedIndex<K, V> for DeltaFitingTree<K, V> {
    // The overlay merge is an unnameable `from_fn` closure iterator, so
    // this implementation boxes — the price of synthesizing owned
    // entries from two underlying cursors.
    type RangeIter<'a>
        = Box<dyn Iterator<Item = (K, V)> + 'a>
    where
        Self: 'a,
        K: 'a,
        V: 'a;

    fn name(&self) -> &'static str {
        "FITing-Tree (delta)"
    }

    fn get(&self, key: &K) -> Option<&V> {
        DeltaFitingTree::get(self, key)
    }

    fn insert(&mut self, key: K, value: V) -> Option<V> {
        DeltaFitingTree::insert(self, key, value)
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        DeltaFitingTree::remove(self, key)
    }

    fn len(&self) -> usize {
        DeltaFitingTree::len(self)
    }

    /// Main-index segment metadata plus the delta map — the delta is
    /// index structure (it shadows, it does not store table data).
    fn size_bytes(&self) -> usize {
        self.main.index_size_bytes()
            + self.delta.len()
                * (std::mem::size_of::<(K, Pending<V>)>() + DELTA_ENTRY_OVERHEAD_BYTES)
    }

    fn range<R: std::ops::RangeBounds<K>>(&self, range: R) -> Self::RangeIter<'_> {
        Box::new(DeltaFitingTree::range(self, range))
    }
}

impl<K: Key, V: Clone> fiting_index_api::BuildableIndex<K, V> for DeltaFitingTree<K, V> {
    type Config = DeltaConfig;
    type BuildError = BuildError;

    fn build_sorted(config: &DeltaConfig, sorted: Vec<(K, V)>) -> Result<Self, BuildError> {
        DeltaFitingTree::bulk_load(config.builder.clone(), sorted, config.delta_budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn build(n: u64, budget: usize) -> DeltaFitingTree<u64, u64> {
        DeltaFitingTree::bulk_load(
            FitingTreeBuilder::new(32),
            (0..n).map(|k| (k * 3, k)),
            budget,
        )
        .unwrap()
    }

    #[test]
    fn reads_see_delta_over_main() {
        let mut t = build(1_000, 0);
        assert_eq!(t.insert(30, 999), Some(10)); // shadows main
        assert_eq!(t.get(&30), Some(&999));
        assert_eq!(t.len(), 1_000);
        assert_eq!(t.insert(31, 1), None);
        assert_eq!(t.len(), 1_001);
    }

    #[test]
    fn tombstones_hide_main_entries() {
        let mut t = build(100, 0);
        assert_eq!(t.remove(&3), Some(1));
        assert_eq!(t.get(&3), None);
        assert_eq!(t.len(), 99);
        assert_eq!(t.remove(&3), None);
        // Delete of a delta-only key drops the pending put entirely.
        t.insert(1_000, 5);
        assert_eq!(t.remove(&1_000), Some(5));
        assert_eq!(t.get(&1_000), None);
    }

    #[test]
    fn merge_preserves_visible_state() {
        let mut t = build(2_000, 0);
        for k in 0..200u64 {
            t.insert(k * 3 + 1, k);
        }
        for k in (0..2_000u64).step_by(7) {
            t.remove(&(k * 3));
        }
        let before: Vec<(u64, u64)> = t.iter().collect();
        let len = t.len();
        t.merge().unwrap();
        assert_eq!(t.delta_len(), 0);
        assert_eq!(t.len(), len);
        let after: Vec<(u64, u64)> = t.iter().collect();
        assert_eq!(before, after);
        t.main().check_invariants().unwrap();
    }

    #[test]
    fn auto_merge_fires_at_budget() {
        let mut t = build(1_000, 64);
        for k in 0..200u64 {
            t.insert(1_000_000 + k, k);
        }
        assert!(t.delta_len() < 64, "delta should have auto-merged");
        assert_eq!(t.len(), 1_200);
        for k in (0..200u64).step_by(11) {
            assert_eq!(t.get(&(1_000_000 + k)), Some(&k));
        }
    }

    #[test]
    fn agrees_with_model_under_churn() {
        let mut t = build(500, 128);
        let mut model: BTreeMap<u64, u64> = (0..500u64).map(|k| (k * 3, k)).collect();
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..5_000u64 {
            let k = rng() % 3_000;
            match rng() % 4 {
                0 | 1 => assert_eq!(t.insert(k, i), model.insert(k, i), "insert {k}"),
                2 => assert_eq!(t.remove(&k), model.remove(&k), "remove {k}"),
                _ => assert_eq!(t.get(&k), model.get(&k), "get {k}"),
            }
            assert_eq!(t.len(), model.len());
        }
        t.merge().unwrap();
        let got: Vec<(u64, u64)> = t.iter().collect();
        let want: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_and_degenerate() {
        let mut t: DeltaFitingTree<u64, u64> =
            DeltaFitingTree::bulk_load(FitingTreeBuilder::new(8), [], 4).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.get(&1), None);
        t.insert(1, 1);
        assert_eq!(t.len(), 1);
        t.merge().unwrap();
        assert_eq!(t.get(&1), Some(&1));
    }
}
