//! The non-clustered (secondary) FITing-Tree (paper Section 2.2.1,
//! Figure 3).
//!
//! A secondary index maps a **non-unique** attribute to row identifiers.
//! The paper adds a sorted *key pages* level — all attribute values in
//! order, each with a pointer into the (unsorted) table — and segments
//! that level exactly like a clustered index.
//!
//! We realize the key-pages level by reusing the clustered machinery
//! over a composite key `(attribute, discriminator)`: duplicates of an
//! attribute value become distinct composite keys that still project to
//! the same interpolation coordinate (the discriminator is ignored by
//! `to_f64`), so segmentation sees the exact vertical runs the paper
//! describes, and the insert/buffer/re-segmentation path carries over
//! unchanged.

use crate::builder::FitingTreeBuilder;
use crate::clustered::FitingTree;
use crate::error::BuildError;
use crate::key::Key;
use crate::stats::FitingTreeStats;
use std::ops::Bound;
use std::ops::RangeBounds;

/// Identifier of a row in the (unsorted) base table.
pub type RowId = u64;

/// Composite key: attribute value + per-entry discriminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct DupKey<K>(K, u64);

impl<K: Key> Key for DupKey<K> {
    const ENCODED_LEN: usize = K::ENCODED_LEN + 8;

    #[inline]
    fn to_f64(self) -> f64 {
        // Duplicates share an interpolation coordinate: the paper's
        // vertical runs in the key → position function.
        self.0.to_f64()
    }

    // Attribute bytes then discriminator bytes — fixed-width because
    // both parts are, so secondary indexes snapshot/log through the
    // same durability machinery as clustered ones.
    fn to_le_bytes(self) -> fiting_index_api::KeyBytes {
        let mut buf = [0u8; fiting_index_api::KeyBytes::MAX_LEN];
        let attr = self.0.to_le_bytes();
        buf[..K::ENCODED_LEN].copy_from_slice(attr.as_slice());
        buf[K::ENCODED_LEN..K::ENCODED_LEN + 8].copy_from_slice(&self.1.to_le_bytes());
        fiting_index_api::KeyBytes::new(&buf[..K::ENCODED_LEN + 8])
    }

    fn from_le_bytes(bytes: &[u8]) -> Self {
        DupKey(
            K::from_le_bytes(&bytes[..K::ENCODED_LEN]),
            u64::from_le_bytes(bytes[K::ENCODED_LEN..].try_into().expect("8-byte seq")),
        )
    }
}

/// A non-clustered FITing-Tree: duplicate keys → row identifiers.
///
/// ```
/// use fiting_tree::SecondaryIndex;
///
/// // Rows 0..6 with a non-unique "city_zone" attribute.
/// let zones = [(10u64, 0), (10, 1), (10, 2), (25, 3), (40, 4), (40, 5)];
/// let mut idx = SecondaryIndex::bulk_load(16, zones).unwrap();
///
/// let rows: Vec<u64> = idx.get(&10).collect();
/// assert_eq!(rows, vec![0, 1, 2]);
/// assert_eq!(idx.get(&11).count(), 0);
///
/// idx.insert(25, 6);
/// assert_eq!(idx.get(&25).count(), 2);
/// ```
pub struct SecondaryIndex<K: Key> {
    inner: FitingTree<DupKey<K>, RowId>,
    next_seq: u64,
}

impl<K: Key> std::fmt::Debug for SecondaryIndex<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecondaryIndex")
            .field("len", &self.inner.len())
            .field("segments", &self.inner.segment_count())
            .finish()
    }
}

impl<K: Key> SecondaryIndex<K> {
    /// Bulk loads `(key, row)` pairs sorted by key (duplicates allowed,
    /// and duplicates of a key may appear in any row order).
    pub fn bulk_load<I>(error: u64, iter: I) -> Result<Self, BuildError>
    where
        I: IntoIterator<Item = (K, RowId)>,
    {
        Self::bulk_load_with(FitingTree::<K, RowId>::builder(error), iter)
    }

    /// Bulk loads with full builder configuration.
    pub fn bulk_load_with<I>(builder: FitingTreeBuilder, iter: I) -> Result<Self, BuildError>
    where
        I: IntoIterator<Item = (K, RowId)>,
    {
        let mut seq = 0u64;
        let mut prev: Option<K> = None;
        let mut composite: Vec<(DupKey<K>, RowId)> = Vec::new();
        let mut unsorted_at: Option<usize> = None;
        for (i, (k, row)) in iter.into_iter().enumerate() {
            if let Some(p) = prev {
                if k < p && unsorted_at.is_none() {
                    unsorted_at = Some(i);
                }
            }
            prev = Some(k);
            composite.push((DupKey(k, seq), row));
            seq += 1;
        }
        if let Some(at) = unsorted_at {
            return Err(BuildError::UnsortedInput { at });
        }
        let inner = builder.bulk_load(composite)?;
        Ok(SecondaryIndex {
            inner,
            next_seq: seq,
        })
    }

    /// An empty secondary index.
    pub fn new(error: u64) -> Result<Self, BuildError> {
        Ok(SecondaryIndex {
            inner: FitingTree::<K, RowId>::builder(error).build_empty()?,
            next_seq: 0,
        })
    }

    /// All rows whose attribute equals `key`, in insertion-discriminator
    /// order.
    pub fn get<'a>(&'a self, key: &K) -> impl Iterator<Item = RowId> + 'a {
        self.inner
            .range((
                Bound::Included(DupKey(*key, 0)),
                Bound::Included(DupKey(*key, u64::MAX)),
            ))
            .map(|(_, &row)| row)
    }

    /// Number of rows with this attribute value.
    #[must_use]
    pub fn count(&self, key: &K) -> usize {
        self.get(key).count()
    }

    /// All `(key, row)` pairs with keys in `range`, in key order.
    pub fn range<'a, R>(&'a self, range: R) -> impl Iterator<Item = (K, RowId)> + 'a
    where
        R: RangeBounds<K>,
    {
        let start = match range.start_bound() {
            Bound::Unbounded => Bound::Unbounded,
            Bound::Included(k) => Bound::Included(DupKey(*k, 0)),
            Bound::Excluded(k) => Bound::Excluded(DupKey(*k, u64::MAX)),
        };
        let end = match range.end_bound() {
            Bound::Unbounded => Bound::Unbounded,
            Bound::Included(k) => Bound::Included(DupKey(*k, u64::MAX)),
            Bound::Excluded(k) => Bound::Excluded(DupKey(*k, 0)),
        };
        self.inner.range((start, end)).map(|(ck, &row)| (ck.0, row))
    }

    /// Adds a row under `key`.
    pub fn insert(&mut self, key: K, row: RowId) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let replaced = self.inner.insert(DupKey(key, seq), row);
        debug_assert!(replaced.is_none(), "discriminators are unique");
    }

    /// Removes one `(key, row)` association. Returns whether it existed.
    pub fn remove(&mut self, key: &K, row: RowId) -> bool {
        // Find the composite entry holding this row id.
        let target: Option<DupKey<K>> = self
            .inner
            .range((
                Bound::Included(DupKey(*key, 0)),
                Bound::Included(DupKey(*key, u64::MAX)),
            ))
            .find(|(_, &r)| r == row)
            .map(|(ck, _)| *ck);
        match target {
            Some(ck) => self.inner.remove(&ck).is_some(),
            None => false,
        }
    }

    /// Total `(key, row)` associations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Number of segments over the key-pages level.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.inner.segment_count()
    }

    /// Index overhead in bytes (directory tree + segment metadata).
    ///
    /// Note the paper's caveat: the sorted key-pages level itself is
    /// overhead *every* secondary index pays (a dense B+ tree pays it in
    /// its leaves); this accessor reports the FITing-Tree-specific part,
    /// which is what Figure 6c compares.
    #[must_use]
    pub fn index_size_bytes(&self) -> usize {
        self.inner.index_size_bytes()
    }

    /// Bytes of the sorted key-pages level (keys + row pointers).
    #[must_use]
    pub fn key_pages_bytes(&self) -> usize {
        self.inner.len() * (std::mem::size_of::<K>() + std::mem::size_of::<RowId>())
    }

    /// Statistics of the underlying segmented structure.
    #[must_use]
    pub fn stats(&self) -> FitingTreeStats {
        self.inner.stats()
    }

    /// Verifies structural invariants (test support).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.inner.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Maps-like data: heavy duplication.
    fn dup_pairs(n: u64, dups: u64) -> Vec<(u64, RowId)> {
        (0..n)
            .flat_map(|k| (0..dups).map(move |d| (k * 100, k * dups + d)))
            .collect()
    }

    #[test]
    fn bulk_load_and_get_duplicates() {
        let idx = SecondaryIndex::bulk_load(32, dup_pairs(1_000, 5)).unwrap();
        assert_eq!(idx.len(), 5_000);
        for k in 0..1_000u64 {
            let rows: Vec<RowId> = idx.get(&(k * 100)).collect();
            assert_eq!(rows.len(), 5, "key {}", k * 100);
            assert_eq!(rows[0], k * 5);
        }
        assert_eq!(idx.get(&50).count(), 0);
        idx.check_invariants().unwrap();
    }

    #[test]
    fn long_duplicate_runs_exceeding_error() {
        // One key duplicated 500 times with error 16: the run must span
        // many segments, and get() must still return every row.
        let pairs: Vec<(u64, RowId)> = (0..500).map(|r| (42u64, r)).collect();
        let idx = SecondaryIndex::bulk_load(16, pairs).unwrap();
        assert!(idx.segment_count() > 1);
        let rows: Vec<RowId> = idx.get(&42).collect();
        assert_eq!(rows, (0..500).collect::<Vec<_>>());
        idx.check_invariants().unwrap();
    }

    #[test]
    fn range_spans_duplicates_correctly() {
        let idx = SecondaryIndex::bulk_load(32, dup_pairs(100, 3)).unwrap();
        let got: Vec<(u64, RowId)> = idx.range(100..=200).collect();
        // Keys 100 and 200, three rows each.
        assert_eq!(got.len(), 6);
        assert!(got.iter().all(|&(k, _)| k == 100 || k == 200));
        let exclusive: Vec<(u64, RowId)> = idx.range(100..200).collect();
        assert_eq!(exclusive.len(), 3);
        assert!(exclusive.iter().all(|&(k, _)| k == 100));
    }

    #[test]
    fn insert_and_remove_rows() {
        let mut idx = SecondaryIndex::bulk_load(16, dup_pairs(100, 2)).unwrap();
        idx.insert(500, 99_999);
        assert_eq!(idx.count(&500), 3);
        assert!(idx.remove(&500, 99_999));
        assert_eq!(idx.count(&500), 2);
        assert!(!idx.remove(&500, 99_999));
        assert!(!idx.remove(&77, 0));
        idx.check_invariants().unwrap();
    }

    #[test]
    fn empty_index_and_incremental_build() {
        let mut idx: SecondaryIndex<u64> = SecondaryIndex::new(8).unwrap();
        assert!(idx.is_empty());
        for r in 0..50 {
            idx.insert(7, r);
        }
        assert_eq!(idx.count(&7), 50);
        assert_eq!(idx.len(), 50);
        idx.check_invariants().unwrap();
    }

    #[test]
    fn bulk_load_rejects_unsorted_keys() {
        let err = SecondaryIndex::bulk_load(16, [(5u64, 0), (3, 1)]).unwrap_err();
        assert!(matches!(err, BuildError::UnsortedInput { at: 1 }));
    }

    #[test]
    fn key_pages_accounting() {
        let idx = SecondaryIndex::bulk_load(32, dup_pairs(1_000, 2)).unwrap();
        assert_eq!(idx.key_pages_bytes(), 2_000 * 16);
        assert!(idx.index_size_bytes() < idx.key_pages_bytes());
    }
}
