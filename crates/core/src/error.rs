//! Error types for building and mutating a FITing-Tree.

use std::fmt;

/// Why a FITing-Tree could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Bulk-load input keys were not strictly increasing (clustered
    /// indexes are over a primary key; use [`crate::SecondaryIndex`] for
    /// duplicates).
    UnsortedInput {
        /// Position of the first offending pair.
        at: usize,
    },
    /// The configured buffer size does not leave any error budget for
    /// segmentation (`buffer_size >= error`, paper Section 5's
    /// `error − buffer_size` rule).
    BufferConsumesError {
        /// Configured total error.
        error: u64,
        /// Configured per-segment buffer size.
        buffer_size: u64,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnsortedInput { at } => {
                write!(
                    f,
                    "bulk-load keys must be strictly increasing (violated at index {at})"
                )
            }
            BuildError::BufferConsumesError { error, buffer_size } => write!(
                f,
                "buffer size {buffer_size} leaves no segmentation budget out of error {error}; \
                 need buffer_size < error"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// Why [`crate::FitingTree::absorb`] refused to append another tree's
/// segment run. Either variant leaves both trees untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsorbError {
    /// The trees disagree on error budget or buffer split: moved
    /// segments would carry measured error envelopes the absorbing
    /// tree's (smaller) search window could clip, breaking the lookup
    /// guarantee.
    ConfigMismatch,
    /// The other tree holds a key `<=` this tree's maximum, so the two
    /// segment runs cannot be concatenated in order.
    KeyOverlap,
}

impl fmt::Display for AbsorbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbsorbError::ConfigMismatch => {
                write!(
                    f,
                    "cannot absorb a tree with a different error/buffer configuration"
                )
            }
            AbsorbError::KeyOverlap => {
                write!(
                    f,
                    "cannot absorb a tree whose keys overlap this tree's range"
                )
            }
        }
    }
}

impl std::error::Error for AbsorbError {}

/// Why an insert was rejected. (Currently unused by the core paths —
/// inserts always succeed — but part of the public API for extensions
/// such as bounded-memory operation.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertError {
    /// The index was configured read-only.
    ReadOnly,
}

impl fmt::Display for InsertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InsertError::ReadOnly => write!(f, "index is read-only"),
        }
    }
}

impl std::error::Error for InsertError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_actionable() {
        let e = BuildError::BufferConsumesError {
            error: 10,
            buffer_size: 10,
        };
        assert!(e.to_string().contains("buffer_size < error"));
        let e = BuildError::UnsortedInput { at: 7 };
        assert!(e.to_string().contains('7'));
        assert_eq!(InsertError::ReadOnly.to_string(), "index is read-only");
    }
}
