//! Statistics and instrumentation types.

/// A snapshot of a [`crate::FitingTree`]'s shape and footprint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitingTreeStats {
    /// Key/value pairs stored.
    pub len: usize,
    /// Live segments (variable-sized pages).
    pub segment_count: usize,
    /// Height of the directory B+ tree.
    pub tree_depth: usize,
    /// Total directory tree nodes.
    pub tree_nodes: usize,
    /// Index overhead in bytes: directory tree + per-segment metadata
    /// (the quantity plotted on the x-axis of the paper's Figure 6).
    pub index_size_bytes: usize,
    /// Bytes of table data held in pages and buffers (not index
    /// overhead; reported for completeness).
    pub data_size_bytes: usize,
    /// Entries currently sitting in segment insert buffers.
    pub buffered_entries: usize,
    /// Mean entries per segment.
    pub avg_segment_len: f64,
    /// Configured total error budget.
    pub error: u64,
    /// Effective segmentation error (`error − buffer_size`).
    pub seg_error: u64,
    /// Per-segment buffer capacity.
    pub buffer_size: u64,
}

/// Phase timing of one instrumented lookup (paper Figure 13's
/// tree-vs-page breakdown). Produced by [`crate::FitingTree::get_traced`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupTrace {
    /// Nanoseconds spent descending the directory tree.
    pub tree_nanos: u64,
    /// Nanoseconds spent interpolating and searching the segment
    /// (page window + buffer).
    pub segment_nanos: u64,
}

impl LookupTrace {
    /// Total lookup time.
    #[must_use]
    pub fn total_nanos(&self) -> u64 {
        self.tree_nanos + self.segment_nanos
    }

    /// Fraction of the lookup spent in the directory tree.
    #[must_use]
    pub fn tree_fraction(&self) -> f64 {
        let total = self.total_nanos();
        if total == 0 {
            0.0
        } else {
            self.tree_nanos as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_fractions() {
        let t = LookupTrace {
            tree_nanos: 75,
            segment_nanos: 25,
        };
        assert_eq!(t.total_nanos(), 100);
        assert!((t.tree_fraction() - 0.75).abs() < 1e-12);
        let z = LookupTrace {
            tree_nanos: 0,
            segment_nanos: 0,
        };
        assert_eq!(z.tree_fraction(), 0.0);
    }
}
