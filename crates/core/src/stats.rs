//! Statistics and instrumentation types.

/// A snapshot of a [`crate::FitingTree`]'s shape and footprint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitingTreeStats {
    /// Key/value pairs stored.
    pub len: usize,
    /// Live segments (variable-sized pages).
    pub segment_count: usize,
    /// Bytes of the flat segment directory (anchor + slot arrays) —
    /// since the mutation-side B+ tree was retired, the *only*
    /// directory structure, searched by lookups and spliced by
    /// structural mutations.
    pub flat_directory_bytes: usize,
    /// Index overhead in bytes: flat directory + per-segment metadata
    /// (the quantity plotted on the x-axis of the paper's Figure 6).
    pub index_size_bytes: usize,
    /// Bytes of table data held in pages and buffers (not index
    /// overhead; reported for completeness).
    pub data_size_bytes: usize,
    /// Entries currently sitting in segment insert buffers.
    pub buffered_entries: usize,
    /// Cumulative incremental directory splices since construction —
    /// one per structural mutation (segment insert/remove,
    /// re-segmentation, run handoff). The operations that previously
    /// each paid an O(S) directory re-mirror.
    pub directory_splices: u64,
    /// Cumulative `(anchor, slot)` entries written by those splices
    /// (the "moved segments" side of the O(moved + shift) splice cost).
    pub directory_splice_entries: u64,
    /// Structural version of the flat directory: bumped by every
    /// mutation of the anchor/slot arrays (dense rebuilds included, so
    /// it runs ahead of `directory_splices`). Equal versions across two
    /// observations prove the window was structurally quiescent — the
    /// single-tree analogue of the sharded front-end's seqlock sequence
    /// word.
    pub directory_version: u64,
    /// Mean entries per segment.
    pub avg_segment_len: f64,
    /// Configured total error budget.
    pub error: u64,
    /// Effective segmentation error (`error − buffer_size`).
    pub seg_error: u64,
    /// Per-segment buffer capacity.
    pub buffer_size: u64,
}

/// Which structure located the covering segment during a lookup.
///
/// Since the flat-directory rework, the read hot path must never
/// descend the pointer-based B+ tree; [`crate::FitingTree::get_traced`]
/// reports the routing so tests can assert it stays that way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectoryPath {
    /// The dense SoA anchor array (interpolation-seeded branchless
    /// search) — the only routing the hot path is allowed to take.
    FlatDirectory,
    /// A pointer-chasing B+ tree descent.
    ///
    /// **Unconstructible in the current code**: the mutation-side B+
    /// tree was retired entirely (the flat directory is the only
    /// directory structure), so no routing site can produce this value.
    /// The variant is retained so recorded traces stay comparable
    /// across versions and the trace-level test keeps pinning the
    /// expected `FlatDirectory` variant. The *behavioral* enforcement
    /// is `FitingTree::check_invariants`, which verifies the directory
    /// directly against the segment run and that every live key routes
    /// to its owning segment.
    BTreeDescent,
}

/// Phase timing of one instrumented lookup (paper Figure 13's
/// tree-vs-page breakdown). Produced by [`crate::FitingTree::get_traced`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupTrace {
    /// Nanoseconds spent locating the covering segment (flat-directory
    /// search; historically a B+ tree descent, hence the field name).
    pub tree_nanos: u64,
    /// Nanoseconds spent interpolating and searching the segment
    /// (page window + buffer).
    pub segment_nanos: u64,
    /// Which directory located the segment.
    pub via: DirectoryPath,
}

impl LookupTrace {
    /// Total lookup time.
    #[must_use]
    pub fn total_nanos(&self) -> u64 {
        self.tree_nanos + self.segment_nanos
    }

    /// Fraction of the lookup spent in the directory tree.
    #[must_use]
    pub fn tree_fraction(&self) -> f64 {
        let total = self.total_nanos();
        if total == 0 {
            0.0
        } else {
            self.tree_nanos as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_fractions() {
        let t = LookupTrace {
            tree_nanos: 75,
            segment_nanos: 25,
            via: DirectoryPath::FlatDirectory,
        };
        assert_eq!(t.total_nanos(), 100);
        assert!((t.tree_fraction() - 0.75).abs() < 1e-12);
        let z = LookupTrace {
            tree_nanos: 0,
            segment_nanos: 0,
            via: DirectoryPath::FlatDirectory,
        };
        assert_eq!(z.tree_fraction(), 0.0);
    }
}
