//! Flat segment directory: the read-hot-path replacement for the
//! per-lookup B+ tree descent.
//!
//! The paper's pitch (Sections 4 and 6) is that a model-predicted
//! position plus a bounded search beats a B+ tree because it replaces
//! cache-missing pointer chases with arithmetic over dense arrays. Our
//! *in-segment* search always worked that way, but every lookup still
//! began with a pointer-based tree descent to find the covering
//! segment. [`FlatDirectory`] removes that: segment anchors live in one
//! dense, SoA pair of arrays (`anchors: Vec<K>`, `slots: Vec<u32>`),
//! immutable between structural rebuilds, and the floor segment is
//! located by an **interpolation-seeded, branchless bounded search**:
//!
//! 1. interpolate a guess position from the anchor-key span (the same
//!    trick the segments use internally),
//! 2. gallop outward from the guess to a bracket that must contain the
//!    floor anchor,
//! 3. finish with a branchless binary search (conditional-move `base`
//!    update, no unpredictable branches) inside the bracket.
//!
//! The B+ tree remains the *mutation-side* directory — structural
//! updates (segment split/merge/insert/remove) are O(log S) there — and
//! [`crate::FitingTree`] mirrors it into this flat form with one
//! `rebuild_directory()` pass after every structural change.
//! `check_invariants` verifies the mirror is exact.

use crate::key::Key;

/// Anchors below this count skip interpolation seeding: a branchless
/// binary over one or two cache lines is already minimal.
const SEED_MIN_ANCHORS: usize = 64;

/// Dense, immutable-between-rebuilds segment directory (SoA layout).
#[derive(Debug, Clone, Default)]
pub(crate) struct FlatDirectory<K> {
    /// Segment anchor keys, ascending.
    anchors: Vec<K>,
    /// Arena slot of the segment anchored at `anchors[i]`.
    slots: Vec<u32>,
    /// Projection of `anchors[0]`, cached for the interpolation seed.
    min_f: f64,
    /// `(len − 1) / (max_f − min_f)`; `0.0` disables seeding (too few
    /// anchors, or a projection span that is zero/non-finite).
    inv_span: f64,
}

impl<K: Key> FlatDirectory<K> {
    /// An empty directory.
    pub fn new() -> Self {
        FlatDirectory {
            anchors: Vec::new(),
            slots: Vec::new(),
            min_f: 0.0,
            inv_span: 0.0,
        }
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.anchors.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.anchors.is_empty()
    }

    /// Rebuilds from `(anchor, slot)` entries in ascending anchor order
    /// — one dense pass, called after structural mutations.
    pub fn rebuild<I: IntoIterator<Item = (K, u32)>>(&mut self, entries: I) {
        self.anchors.clear();
        self.slots.clear();
        for (anchor, slot) in entries {
            self.anchors.push(anchor);
            self.slots.push(slot);
        }
        debug_assert!(self.anchors.windows(2).all(|w| w[0] < w[1]));
        let n = self.anchors.len();
        self.min_f = 0.0;
        self.inv_span = 0.0;
        if n >= SEED_MIN_ANCHORS {
            let min_f = self.anchors[0].to_f64();
            let span = self.anchors[n - 1].to_f64() - min_f;
            if span.is_finite() && span > 0.0 {
                self.min_f = min_f;
                self.inv_span = (n - 1) as f64 / span;
            }
        }
    }

    /// Directory position of the segment responsible for `key`: the
    /// floor anchor, falling back to position 0 for keys below every
    /// anchor (the first segment may hold buffered keys below its
    /// anchor). `None` only when the directory is empty.
    #[inline]
    pub fn floor_index(&self, key: K) -> Option<usize> {
        let n = self.anchors.len();
        if n == 0 {
            return None;
        }
        let (mut base, mut size) = self.bracket(key, n);
        // Branchless bounded search: the conditional assignment compiles
        // to a conditional move, so the loop retires with no
        // unpredictable branches regardless of the key distribution.
        while size > 1 {
            let half = size / 2;
            let mid = base + half;
            base = if self.anchors[mid] <= key { mid } else { base };
            size -= half;
        }
        Some(base)
    }

    /// Arena slot of the segment responsible for `key`.
    #[inline]
    pub fn locate(&self, key: K) -> Option<usize> {
        self.floor_index(key).map(|i| self.slots[i] as usize)
    }

    /// Arena slot at directory position `i` (for ordered walks).
    #[inline]
    pub fn slot_at(&self, i: usize) -> usize {
        self.slots[i] as usize
    }

    /// Slot of the last (largest-anchor) segment.
    pub fn last_slot(&self) -> Option<usize> {
        self.slots.last().map(|&s| s as usize)
    }

    /// Heap bytes of the two directory arrays.
    pub fn size_bytes(&self) -> usize {
        self.anchors.len() * std::mem::size_of::<K>()
            + self.slots.len() * std::mem::size_of::<u32>()
    }

    /// Ordered `(anchor, slot)` view, for invariant checks.
    pub fn entries(&self) -> impl Iterator<Item = (K, usize)> + '_ {
        self.anchors
            .iter()
            .zip(&self.slots)
            .map(|(&a, &s)| (a, s as usize))
    }

    /// Interpolation-seeded bracket `[base, base + size)` guaranteed to
    /// contain the floor position (or position 0 when every anchor
    /// exceeds `key`).
    #[inline]
    fn bracket(&self, key: K, n: usize) -> (usize, usize) {
        if self.inv_span == 0.0 {
            return (0, n);
        }
        let kf = key.to_f64();
        // Keys are NaN-free by the Key contract; clamp handles both
        // out-of-span keys and f64 rounding.
        let guess = ((kf - self.min_f) * self.inv_span)
            .max(0.0)
            .min((n - 1) as f64) as usize;
        if self.anchors[guess] <= key {
            // Exact-guess fast path: on near-affine anchor sets the
            // interpolated position usually *is* the floor — confirm
            // with one neighbor compare and skip the gallop entirely.
            if guess + 1 >= n || self.anchors[guess + 1] > key {
                return (guess, 1);
            }
            // Floor is at or right of the guess: gallop right.
            let mut lo = guess;
            let mut step = 8usize;
            loop {
                let probe = lo + step;
                if probe >= n {
                    return (lo, n - lo);
                }
                if self.anchors[probe] > key {
                    return (lo, probe - lo);
                }
                lo = probe;
                step <<= 1;
            }
        } else {
            // Floor is strictly left of the guess: gallop left.
            let mut hi = guess; // anchors[hi] > key
            let mut step = 8usize;
            loop {
                let probe = hi.saturating_sub(step);
                if self.anchors[probe] <= key {
                    return (probe, hi - probe);
                }
                if probe == 0 {
                    // Every anchor exceeds the key: first-segment
                    // fallback.
                    return (0, 1);
                }
                hi = probe;
                step <<= 1;
            }
        }
    }
}

/// Largest index in `run` whose element is `<= key`, or 0 when every
/// element exceeds `key` — the shared branchless floor kernel used by
/// both the directory and the segments' bounded window search.
#[inline]
pub(crate) fn branchless_floor<T: Ord>(run: &[T], key: &T) -> usize {
    debug_assert!(!run.is_empty());
    let mut base = 0usize;
    let mut size = run.len();
    while size > 1 {
        let half = size / 2;
        let mid = base + half;
        base = if run[mid] <= *key { mid } else { base };
        size -= half;
    }
    base
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(anchors: &[u64]) -> FlatDirectory<u64> {
        let mut d = FlatDirectory::new();
        d.rebuild(anchors.iter().enumerate().map(|(i, &a)| (a, i as u32)));
        d
    }

    #[test]
    fn empty_directory_locates_nothing() {
        let d: FlatDirectory<u64> = FlatDirectory::new();
        assert_eq!(d.locate(5), None);
        assert_eq!(d.last_slot(), None);
        assert!(d.is_empty());
    }

    #[test]
    fn floor_matches_scan_small() {
        // Below SEED_MIN_ANCHORS: unseeded branchless path.
        let anchors = [10u64, 20, 30, 40];
        let d = dir(&anchors);
        for key in 0..60u64 {
            let want = anchors.iter().rposition(|&a| a <= key).unwrap_or(0);
            assert_eq!(d.floor_index(key), Some(want), "key {key}");
        }
    }

    #[test]
    fn floor_matches_scan_seeded_uniform_and_skewed() {
        for anchors in [
            (0..500u64).map(|i| i * 97 + 13).collect::<Vec<_>>(),
            (0..500u64).map(|i| i * i * i).collect::<Vec<_>>(),
        ] {
            let d = dir(&anchors);
            let mut probes: Vec<u64> = anchors.clone();
            probes.extend(anchors.iter().map(|a| a.saturating_sub(1)));
            probes.extend(anchors.iter().map(|a| a + 1));
            probes.push(0);
            probes.push(u64::MAX);
            for key in probes {
                let want = anchors.iter().rposition(|&a| a <= key).unwrap_or(0);
                assert_eq!(d.floor_index(key), Some(want), "key {key}");
            }
        }
    }

    #[test]
    fn seeding_disabled_on_flat_projection_span() {
        // Identical projections (span 0) must fall back to the unseeded
        // bracket instead of dividing by zero.
        let anchors: Vec<u64> = (0..100).collect();
        let mut d = FlatDirectory::new();
        d.rebuild(anchors.iter().map(|&a| (a, a as u32)));
        assert!(d.inv_span != 0.0);
        // A rebuild with a single anchor resets the seed state.
        d.rebuild([(7u64, 3u32)]);
        assert_eq!(d.inv_span, 0.0);
        assert_eq!(d.locate(100), Some(3));
        assert_eq!(d.locate(0), Some(3));
    }

    #[test]
    fn slots_follow_arena_not_position() {
        let mut d = FlatDirectory::new();
        d.rebuild([(10u64, 5u32), (20, 0), (30, 9)]);
        assert_eq!(d.locate(25), Some(0));
        assert_eq!(d.locate(9), Some(5)); // first-segment fallback
        assert_eq!(d.last_slot(), Some(9));
        assert_eq!(d.slot_at(2), 9);
        assert_eq!(
            d.entries().collect::<Vec<_>>(),
            vec![(10, 5), (20, 0), (30, 9)]
        );
    }

    #[test]
    fn branchless_floor_agrees_with_rposition() {
        let run: Vec<u64> = (0..97).map(|i| i * 3).collect();
        for key in 0..300u64 {
            let want = run.iter().rposition(|&a| a <= key).unwrap_or(0);
            assert_eq!(branchless_floor(&run, &key), want, "key {key}");
        }
        assert_eq!(branchless_floor(&[42u64], &0), 0);
    }
}
