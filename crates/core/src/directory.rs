//! Flat segment directory: the read-hot-path replacement for the
//! per-lookup B+ tree descent.
//!
//! The paper's pitch (Sections 4 and 6) is that a model-predicted
//! position plus a bounded search beats a B+ tree because it replaces
//! cache-missing pointer chases with arithmetic over dense arrays. Our
//! *in-segment* search always worked that way, but every lookup still
//! began with a pointer-based tree descent to find the covering
//! segment. [`FlatDirectory`] removes that: segment anchors live in one
//! dense, SoA pair of arrays (`anchors: Vec<K>`, `slots: Vec<u32>`),
//! immutable between structural rebuilds, and the floor segment is
//! located by an **interpolation-seeded, branchless bounded search**:
//!
//! 1. interpolate a guess position from the anchor-key span (the same
//!    trick the segments use internally),
//! 2. gallop outward from the guess to a bracket that must contain the
//!    floor anchor,
//! 3. finish with a branchless binary search (conditional-move `base`
//!    update, no unpredictable branches) inside the bracket.
//!
//! Since the mutation-side B+ tree was retired, this flat form is the
//! **only** segment directory: structural mutations (segment
//! split/merge/insert/remove) patch the affected window of the
//! `anchors`/`slots` arrays in place with [`FlatDirectory::splice`] —
//! O(moved segments + tail shift), one `memmove` instead of the old
//! O(S) re-mirror of a pointer-based tree — and whole-run handoffs
//! ([`FlatDirectory::split_off`]) move directory spans without touching
//! the entries inside them. `FitingTree::check_invariants` verifies the
//! directory directly against the segment run.

use crate::key::Key;

/// Anchors below this count skip interpolation seeding: a branchless
/// binary over one or two cache lines is already minimal.
const SEED_MIN_ANCHORS: usize = 64;

/// Dense, immutable-between-rebuilds segment directory (SoA layout).
#[derive(Debug, Clone, Default)]
pub(crate) struct FlatDirectory<K> {
    /// Segment anchor keys, ascending.
    anchors: Vec<K>,
    /// Arena slot of the segment anchored at `anchors[i]`.
    slots: Vec<u32>,
    /// Projection of `anchors[0]`, cached for the interpolation seed.
    min_f: f64,
    /// `(len − 1) / (max_f − min_f)`; `0.0` disables seeding (too few
    /// anchors, or a projection span that is zero/non-finite).
    inv_span: f64,
    /// Structural version: bumped by every mutation that changes the
    /// anchor/slot arrays (`rebuild`, `splice`, `split_off` — both
    /// halves). The in-process analogue of the sharded front-end's
    /// seqlock sequence word: a reader that records the version before
    /// and after an unlocked observation can detect a concurrent splice
    /// the same way a seqlock read detects a writer, and invariant
    /// checks use equality to prove a window was mutation-free.
    version: u64,
}

impl<K: Key> FlatDirectory<K> {
    /// An empty directory (version 0; the first mutation moves to 1).
    pub fn new() -> Self {
        FlatDirectory {
            anchors: Vec::new(),
            slots: Vec::new(),
            min_f: 0.0,
            inv_span: 0.0,
            version: 0,
        }
    }

    /// Structural version — see the field docs. Monotonic per
    /// directory instance; a `split_off` upper half starts its own
    /// sequence at 1.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.anchors.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.anchors.is_empty()
    }

    /// Rebuilds from `(anchor, slot)` entries in ascending anchor order
    /// — one dense pass, used by bulk load (where the whole run changes
    /// anyway). Incremental mutations use [`splice`](Self::splice).
    pub fn rebuild<I: IntoIterator<Item = (K, u32)>>(&mut self, entries: I) {
        self.anchors.clear();
        self.slots.clear();
        for (anchor, slot) in entries {
            self.anchors.push(anchor);
            self.slots.push(slot);
        }
        self.reseed();
    }

    /// Recomputes the interpolation-seed state from the current anchor
    /// run and bumps the structural version. O(1): only the endpoints
    /// are read. Every structural mutation funnels through here, which
    /// is what makes the version counter exhaustive.
    fn reseed(&mut self) {
        debug_assert!(self.anchors.windows(2).all(|w| w[0] < w[1]));
        self.version += 1;
        let n = self.anchors.len();
        self.min_f = 0.0;
        self.inv_span = 0.0;
        if n >= SEED_MIN_ANCHORS {
            let min_f = self.anchors[0].to_f64();
            let span = self.anchors[n - 1].to_f64() - min_f;
            if span.is_finite() && span > 0.0 {
                self.min_f = min_f;
                self.inv_span = (n - 1) as f64 / span;
            }
        }
    }

    /// Replaces the directory window `range` with `entries`, shifting
    /// the tail — the incremental mutation primitive. Cost is
    /// O(`entries.len()` + tail shift): one `memmove` of the dense
    /// arrays instead of the retired O(S) tree re-mirror. The resulting
    /// anchor run must remain strictly ascending (debug-asserted).
    pub fn splice(&mut self, range: std::ops::Range<usize>, entries: &[(K, u32)]) {
        self.anchors
            .splice(range.clone(), entries.iter().map(|&(a, _)| a));
        self.slots.splice(range, entries.iter().map(|&(_, s)| s));
        self.reseed();
    }

    /// Splits the directory at position `pos`: entries `[pos, len)`
    /// move into the returned directory, `[0, pos)` stay. Both sides
    /// reseed. O(moved entries) — the whole-run handoff primitive
    /// behind `FitingTree::split_off`.
    pub fn split_off(&mut self, pos: usize) -> FlatDirectory<K> {
        let anchors = self.anchors.split_off(pos);
        let slots = self.slots.split_off(pos);
        self.reseed();
        let mut upper = FlatDirectory {
            anchors,
            slots,
            min_f: 0.0,
            inv_span: 0.0,
            version: 0,
        };
        upper.reseed();
        upper
    }

    /// From-scratch reconstruction of the arrays from their own
    /// contents — the retired `rebuild_directory()` cost (an O(S)
    /// collect-and-repush), kept **only** as the measurable baseline
    /// for the `insert-heavy` bench scenario's splice-vs-rebuild
    /// comparison.
    pub fn rebuild_in_place(&mut self) {
        let entries: Vec<(K, u32)> = self
            .anchors
            .iter()
            .copied()
            .zip(self.slots.iter().copied())
            .collect();
        self.rebuild(entries);
    }

    /// Directory position of the segment responsible for `key`: the
    /// floor anchor, falling back to position 0 for keys below every
    /// anchor (the first segment may hold buffered keys below its
    /// anchor). `None` only when the directory is empty.
    #[inline]
    pub fn floor_index(&self, key: K) -> Option<usize> {
        let n = self.anchors.len();
        if n == 0 {
            return None;
        }
        let (mut base, mut size) = self.bracket(key, n);
        // Branchless bounded search: the conditional assignment compiles
        // to a conditional move, so the loop retires with no
        // unpredictable branches regardless of the key distribution.
        while size > 1 {
            let half = size / 2;
            let mid = base + half;
            base = if self.anchors[mid] <= key { mid } else { base };
            size -= half;
        }
        Some(base)
    }

    /// Arena slot of the segment responsible for `key`.
    #[inline]
    pub fn locate(&self, key: K) -> Option<usize> {
        self.floor_index(key).map(|i| self.slots[i] as usize)
    }

    /// Arena slot at directory position `i` (for ordered walks).
    #[inline]
    pub fn slot_at(&self, i: usize) -> usize {
        self.slots[i] as usize
    }

    /// Anchor key at directory position `i` — O(1), used by the tree's
    /// debug assertions so they don't reintroduce per-mutation O(S)
    /// walks in debug builds.
    #[inline]
    pub fn anchor_at(&self, i: usize) -> K {
        self.anchors[i]
    }

    /// Slot of the last (largest-anchor) segment.
    pub fn last_slot(&self) -> Option<usize> {
        self.slots.last().map(|&s| s as usize)
    }

    /// Heap bytes of the two directory arrays.
    pub fn size_bytes(&self) -> usize {
        self.anchors.len() * std::mem::size_of::<K>()
            + self.slots.len() * std::mem::size_of::<u32>()
    }

    /// Ordered `(anchor, slot)` view, for invariant checks.
    pub fn entries(&self) -> impl Iterator<Item = (K, usize)> + '_ {
        self.anchors
            .iter()
            .zip(&self.slots)
            .map(|(&a, &s)| (a, s as usize))
    }

    /// Interpolation-seeded bracket `[base, base + size)` guaranteed to
    /// contain the floor position (or position 0 when every anchor
    /// exceeds `key`).
    #[inline]
    fn bracket(&self, key: K, n: usize) -> (usize, usize) {
        if self.inv_span == 0.0 {
            return (0, n);
        }
        let kf = key.to_f64();
        // Keys are NaN-free by the Key contract; clamp handles both
        // out-of-span keys and f64 rounding.
        let guess = ((kf - self.min_f) * self.inv_span)
            .max(0.0)
            .min((n - 1) as f64) as usize;
        if self.anchors[guess] <= key {
            // Exact-guess fast path: on near-affine anchor sets the
            // interpolated position usually *is* the floor — confirm
            // with one neighbor compare and skip the gallop entirely.
            if guess + 1 >= n || self.anchors[guess + 1] > key {
                return (guess, 1);
            }
            // Floor is at or right of the guess: gallop right.
            let mut lo = guess;
            let mut step = 8usize;
            loop {
                let probe = lo + step;
                if probe >= n {
                    return (lo, n - lo);
                }
                if self.anchors[probe] > key {
                    return (lo, probe - lo);
                }
                lo = probe;
                step <<= 1;
            }
        } else {
            // Floor is strictly left of the guess: gallop left.
            let mut hi = guess; // anchors[hi] > key
            let mut step = 8usize;
            loop {
                let probe = hi.saturating_sub(step);
                if self.anchors[probe] <= key {
                    return (probe, hi - probe);
                }
                if probe == 0 {
                    // Every anchor exceeds the key: first-segment
                    // fallback.
                    return (0, 1);
                }
                hi = probe;
                step <<= 1;
            }
        }
    }
}

/// Largest index in `run` whose element is `<= key`, or 0 when every
/// element exceeds `key` — the shared branchless floor kernel used by
/// both the directory and the segments' bounded window search.
#[inline]
pub(crate) fn branchless_floor<T: Ord>(run: &[T], key: &T) -> usize {
    debug_assert!(!run.is_empty());
    let mut base = 0usize;
    let mut size = run.len();
    while size > 1 {
        let half = size / 2;
        let mid = base + half;
        base = if run[mid] <= *key { mid } else { base };
        size -= half;
    }
    base
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(anchors: &[u64]) -> FlatDirectory<u64> {
        let mut d = FlatDirectory::new();
        d.rebuild(anchors.iter().enumerate().map(|(i, &a)| (a, i as u32)));
        d
    }

    #[test]
    fn empty_directory_locates_nothing() {
        let d: FlatDirectory<u64> = FlatDirectory::new();
        assert_eq!(d.locate(5), None);
        assert_eq!(d.last_slot(), None);
        assert!(d.is_empty());
    }

    #[test]
    fn floor_matches_scan_small() {
        // Below SEED_MIN_ANCHORS: unseeded branchless path.
        let anchors = [10u64, 20, 30, 40];
        let d = dir(&anchors);
        for key in 0..60u64 {
            let want = anchors.iter().rposition(|&a| a <= key).unwrap_or(0);
            assert_eq!(d.floor_index(key), Some(want), "key {key}");
        }
    }

    #[test]
    fn floor_matches_scan_seeded_uniform_and_skewed() {
        for anchors in [
            (0..500u64).map(|i| i * 97 + 13).collect::<Vec<_>>(),
            (0..500u64).map(|i| i * i * i).collect::<Vec<_>>(),
        ] {
            let d = dir(&anchors);
            let mut probes: Vec<u64> = anchors.clone();
            probes.extend(anchors.iter().map(|a| a.saturating_sub(1)));
            probes.extend(anchors.iter().map(|a| a + 1));
            probes.push(0);
            probes.push(u64::MAX);
            for key in probes {
                let want = anchors.iter().rposition(|&a| a <= key).unwrap_or(0);
                assert_eq!(d.floor_index(key), Some(want), "key {key}");
            }
        }
    }

    #[test]
    fn seeding_disabled_on_flat_projection_span() {
        // Identical projections (span 0) must fall back to the unseeded
        // bracket instead of dividing by zero.
        let anchors: Vec<u64> = (0..100).collect();
        let mut d = FlatDirectory::new();
        d.rebuild(anchors.iter().map(|&a| (a, a as u32)));
        assert!(d.inv_span != 0.0);
        // A rebuild with a single anchor resets the seed state.
        d.rebuild([(7u64, 3u32)]);
        assert_eq!(d.inv_span, 0.0);
        assert_eq!(d.locate(100), Some(3));
        assert_eq!(d.locate(0), Some(3));
    }

    #[test]
    fn slots_follow_arena_not_position() {
        let mut d = FlatDirectory::new();
        d.rebuild([(10u64, 5u32), (20, 0), (30, 9)]);
        assert_eq!(d.locate(25), Some(0));
        assert_eq!(d.locate(9), Some(5)); // first-segment fallback
        assert_eq!(d.last_slot(), Some(9));
        assert_eq!(d.slot_at(2), 9);
        assert_eq!(
            d.entries().collect::<Vec<_>>(),
            vec![(10, 5), (20, 0), (30, 9)]
        );
    }

    #[test]
    fn splice_insert_remove_replace_match_rebuild() {
        let mut d = dir(&[10, 20, 30, 40]);
        // Insert in the middle.
        d.splice(2..2, &[(25, 7)]);
        assert_eq!(
            d.entries().collect::<Vec<_>>(),
            vec![(10, 0), (20, 1), (25, 7), (30, 2), (40, 3)]
        );
        // Replace one entry with two.
        d.splice(1..2, &[(18, 8), (22, 9)]);
        assert_eq!(
            d.entries().collect::<Vec<_>>(),
            vec![(10, 0), (18, 8), (22, 9), (25, 7), (30, 2), (40, 3)]
        );
        // Remove a window.
        d.splice(1..4, &[]);
        assert_eq!(
            d.entries().collect::<Vec<_>>(),
            vec![(10, 0), (30, 2), (40, 3)]
        );
        // Append splice.
        let n = d.len();
        d.splice(n..n, &[(50, 4)]);
        assert_eq!(d.last_slot(), Some(4));
        for key in [0u64, 10, 29, 30, 45, 50, 99] {
            let want = [10u64, 30, 40, 50]
                .iter()
                .rposition(|&a| a <= key)
                .unwrap_or(0);
            assert_eq!(d.floor_index(key), Some(want), "key {key}");
        }
    }

    /// Proptest-style battery: random splice sequences against a
    /// from-scratch rebuild oracle, across sizes that cross the
    /// interpolation-seeding threshold in both directions.
    #[test]
    fn random_splice_sequences_match_rebuild_oracle() {
        let mut state = 0x1357_9bdf_2468_acecu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..60u64 {
            // Model: a sorted set of (anchor, slot) entries.
            let start_n = (rng() % 200) as usize;
            let mut model: Vec<(u64, u32)> = (0..start_n as u64)
                .map(|i| (i * 1_000 + 500, rng() as u32))
                .collect();
            let mut d = FlatDirectory::new();
            d.rebuild(model.iter().copied());
            for _step in 0..40 {
                let lo = if model.is_empty() {
                    0
                } else {
                    (rng() as usize) % (model.len() + 1)
                };
                let hi = (lo + (rng() as usize) % 4).min(model.len());
                // Replacement anchors strictly inside the hole's key gap.
                let gap_lo = if lo == 0 { 0 } else { model[lo - 1].0 + 1 };
                let gap_hi = if hi == model.len() {
                    gap_lo + 1_000_000
                } else {
                    model[hi].0
                };
                let room = gap_hi.saturating_sub(gap_lo);
                let count = (rng() % 4).min(room) as usize;
                let repl: Vec<(u64, u32)> = (0..count as u64)
                    .map(|i| {
                        (
                            gap_lo + i * (room / count.max(1) as u64).max(1),
                            rng() as u32,
                        )
                    })
                    .collect();
                // Skip degenerate replacements that would collide.
                if repl.windows(2).any(|w| w[0].0 >= w[1].0)
                    || repl.last().is_some_and(|&(a, _)| a >= gap_hi)
                {
                    continue;
                }
                model.splice(lo..hi, repl.iter().copied());
                d.splice(lo..hi, &repl);

                // Oracle: a from-scratch rebuild of the same entries.
                let mut oracle = FlatDirectory::new();
                oracle.rebuild(model.iter().copied());
                assert_eq!(
                    d.entries().collect::<Vec<_>>(),
                    oracle.entries().collect::<Vec<_>>(),
                    "case {case} entries diverged"
                );
                // Every floor query agrees with both the oracle and a
                // linear scan of the model.
                let mut probes: Vec<u64> = model.iter().map(|&(a, _)| a).collect();
                probes.extend(model.iter().map(|&(a, _)| a.saturating_sub(1)));
                probes.extend(model.iter().map(|&(a, _)| a + 1));
                probes.push(0);
                probes.push(u64::MAX);
                for key in probes {
                    let want = model.iter().rposition(|&(a, _)| a <= key).unwrap_or(0);
                    let want = (!model.is_empty()).then_some(want);
                    assert_eq!(d.floor_index(key), want, "case {case} key {key}");
                    assert_eq!(oracle.floor_index(key), want, "case {case} oracle {key}");
                }
            }
        }
    }

    #[test]
    fn split_off_partitions_and_reseeds() {
        let anchors: Vec<u64> = (0..300u64).map(|i| i * 17 + 3).collect();
        let mut d = dir(&anchors);
        let upper = {
            let mut d = d.clone();
            let u = d.split_off(120);
            assert_eq!(d.len(), 120);
            assert_eq!(u.len(), 180);
            // Both sides answer floor queries as if rebuilt fresh.
            for key in (0..6_000u64).step_by(7) {
                let want = anchors[..120].iter().rposition(|&a| a <= key).unwrap_or(0);
                assert_eq!(d.floor_index(key), Some(want), "lower {key}");
                let want = anchors[120..].iter().rposition(|&a| a <= key).unwrap_or(0);
                assert_eq!(u.floor_index(key), Some(want), "upper {key}");
            }
            u
        };
        // Degenerate splits.
        let all = d.split_off(0);
        assert!(d.is_empty());
        assert_eq!(all.len(), 300);
        let mut d2 = all;
        let none = d2.split_off(300);
        assert!(none.is_empty());
        assert_eq!(d2.len(), 300);
        drop(upper);
    }

    #[test]
    fn version_counts_every_structural_mutation() {
        let mut d: FlatDirectory<u64> = FlatDirectory::new();
        assert_eq!(d.version(), 0);
        d.rebuild((0..10u64).map(|i| (i * 10, i as u32)));
        assert_eq!(d.version(), 1);
        // Reads never bump.
        let _ = d.floor_index(35);
        let _ = d.locate(35);
        let _ = d.entries().count();
        assert_eq!(d.version(), 1);
        // Every mutation primitive bumps exactly once...
        d.splice(3..3, &[(25, 9)]);
        assert_eq!(d.version(), 2);
        d.splice(3..4, &[]);
        assert_eq!(d.version(), 3);
        let upper = d.split_off(5);
        assert_eq!(d.version(), 4);
        // ...and a split-off upper half starts its own sequence.
        assert_eq!(upper.version(), 1);
        // A clone carries the version forward independently.
        let mut c = d.clone();
        c.splice(1..1, &[(5, 0)]);
        assert_eq!(c.version(), 5);
        assert_eq!(d.version(), 4);
    }

    #[test]
    fn rebuild_in_place_is_identity() {
        let anchors: Vec<u64> = (0..150u64).map(|i| i * i).collect();
        let mut d = dir(&anchors);
        let before: Vec<_> = d.entries().collect();
        d.rebuild_in_place();
        assert_eq!(d.entries().collect::<Vec<_>>(), before);
        assert_eq!(d.floor_index(100), dir(&anchors).floor_index(100));
    }

    #[test]
    fn branchless_floor_agrees_with_rposition() {
        let run: Vec<u64> = (0..97).map(|i| i * 3).collect();
        for key in 0..300u64 {
            let want = run.iter().rposition(|&a| a <= key).unwrap_or(0);
            assert_eq!(branchless_floor(&run, &key), want, "key {key}");
        }
        assert_eq!(branchless_floor(&[42u64], &0), 0);
    }
}
