//! A segment: one variable-sized table page plus its insert buffer.
//!
//! Each segment owns the sorted run of keys it covers (the paper's
//! variable-sized table page), the fitted slope used for interpolation,
//! and a fixed-capacity sorted delta buffer for inserts (paper
//! Section 5). Lookups interpolate a position from the slope, then
//! search only the `±seg_error` window around it — the bound the
//! segmentation algorithm guarantees — and finally the buffer.
//!
//! # Page layout (SoA)
//!
//! The page is stored **structure-of-arrays**: `keys: Vec<K>` parallel
//! to `values: Vec<V>`. The bounded window search only ever touches the
//! dense key array — every cache line it pulls is full of keys, not
//! half value payload — so small windows resolve with a branchless
//! (autovectorizable) scan and large windows with a branchless binary
//! search; the value array is read exactly once, on a confirmed hit,
//! and range scans stream exactly `size_of::<V>()` bytes per entry.
//!
//! Removals are **tombstones** in a lazily-allocated bitmap: O(1), and
//! — unlike the old shifting `Vec::remove` — they leave every
//! surviving key at its original slot, so interpolated predictions
//! stay exact and the search window never needs to widen. The
//! `removed` count still drives re-segmentation so pages don't
//! accumulate dead slots forever.

use crate::directory::branchless_floor;
use crate::key::Key;

/// Window widths at or below this use the branchless (autovectorizable)
/// count scan; wider windows use the branchless binary search.
///
/// The scan's loads are independent, so the out-of-order core overlaps
/// every cache line of the window behind roughly one miss latency,
/// while binary probing chains dependent misses — on cold pages the
/// scan wins far past the point where instruction counts would suggest
/// (16 cache lines of u64 keys at this setting).
const SMALL_WINDOW: usize = 128;

/// How to search the bounded window around an interpolated position
/// (paper Section 4.1.2 lists binary, linear, and exponential search;
/// it defaults to binary and notes linear can win at very small errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchStrategy {
    /// Bounded search over the window (the paper's default): a
    /// branchless count-based scan for small windows, branchless binary
    /// search for large ones.
    #[default]
    Binary,
    /// Left-to-right scan of the window; fastest for tiny errors.
    Linear,
    /// Galloping outward from the predicted slot, then binary search in
    /// the bracketed range; adaptive when predictions are usually good.
    Exponential,
    /// Repeated interpolation inside the window (Graefe's in-page
    /// interpolation search, cited by the paper's Section 4.1.2):
    /// near-O(log log w) probes on locally uniform data, degrading to a
    /// bounded binary tail otherwise.
    Interpolation,
}

/// One variable-sized page of the clustered index.
#[derive(Debug, Clone)]
pub(crate) struct Segment<K, V> {
    /// Interpolation anchor: the first key the segmentation placed in
    /// this segment. Buffered inserts may hold smaller keys.
    pub start_key: K,
    /// Cached `start_key.to_f64()` — hoisted out of the per-lookup
    /// prediction, which previously recomputed the projection on every
    /// probe.
    start_key_f: f64,
    /// Fitted slope (positions per key unit), from the segmentation cone.
    pub slope: f64,
    /// The sorted page keys (dense; tombstoned slots keep their key).
    pub keys: Vec<K>,
    /// Values parallel to `keys`, dense — liveness lives in the `dead`
    /// bitmap so scans stream exactly `size_of::<V>()` bytes per entry.
    pub values: Vec<V>,
    /// Tombstone bitmap (one bit per page slot), allocated lazily on
    /// the first page removal; empty means every slot is live, so
    /// segments that never see a delete pay one predictable branch and
    /// zero extra memory.
    dead: Vec<u64>,
    /// Sorted delta buffer; bounded by the tree's configured buffer size.
    pub buffer: Vec<(K, V)>,
    /// Tombstoned page slots since the last (re-)segmentation. Slots
    /// stay in place, so predictions remain exact; the count triggers
    /// re-segmentation before dead slots dominate the page (delete
    /// support is an extension over the paper).
    pub removed: u64,
    /// Measured prediction error bounds over this page: every key at
    /// position `i` satisfies `pred − under ≤ i ≤ pred + over`. Exact —
    /// computed with the same clamped f64 prediction lookups use — and
    /// stable until re-segmentation, because tombstones never move
    /// slots. The search window is the *intersection* of these bounds
    /// with the configured `±(seg_error + 1)` budget, so it can only
    /// shrink relative to the paper's worst case.
    under: u32,
    /// See [`under`](field@Self::under): max of `i − pred` over the page.
    over: u32,
}

impl<K: Key, V> Segment<K, V> {
    pub fn new(start_key: K, slope: f64, data: Vec<(K, V)>) -> Self {
        debug_assert!(data.windows(2).all(|w| w[0].0 <= w[1].0));
        let mut keys = Vec::with_capacity(data.len());
        let mut values = Vec::with_capacity(data.len());
        for (k, v) in data {
            keys.push(k);
            values.push(v);
        }
        let mut seg = Segment {
            start_key,
            start_key_f: start_key.to_f64(),
            slope,
            keys,
            values,
            dead: Vec::new(),
            buffer: Vec::new(),
            removed: 0,
            under: 0,
            over: 0,
        };
        seg.measure_error_bounds();
        seg
    }

    /// The tombstone bitmap words (empty when no slot was ever
    /// removed) — read by the snapshot writer, which persists liveness
    /// alongside the SoA page arrays.
    pub(crate) fn dead_words(&self) -> &[u64] {
        &self.dead
    }

    /// The measured prediction-error envelope `(under, over)` — read
    /// by the snapshot writer, which persists it so the decoder can
    /// skip the O(page) re-measurement pass.
    pub(crate) fn error_envelope(&self) -> (u32, u32) {
        (self.under, self.over)
    }

    /// Reassembles a segment from its persisted parts — the snapshot
    /// decoder's constructor. `removed` is recounted from the bitmap
    /// (a cheap popcount); the error envelope `(under, over)` is taken
    /// as persisted — it sits under the section checksum, and debug
    /// builds re-measure it to catch codec bugs.
    ///
    /// `dead` must be either empty or exactly
    /// `keys.len().div_ceil(64)` words; `buffer` must be sorted by key.
    pub(crate) fn from_raw_parts(
        start_key: K,
        slope: f64,
        keys: Vec<K>,
        values: Vec<V>,
        dead: Vec<u64>,
        buffer: Vec<(K, V)>,
        envelope: (u32, u32),
    ) -> Self {
        debug_assert!(dead.is_empty() || dead.len() == keys.len().div_ceil(64));
        debug_assert!(buffer.windows(2).all(|w| w[0].0 <= w[1].0));
        let removed: u64 = dead.iter().map(|w| u64::from(w.count_ones())).sum();
        let seg = Segment {
            start_key,
            start_key_f: start_key.to_f64(),
            slope,
            keys,
            values,
            dead,
            buffer,
            removed,
            under: envelope.0,
            over: envelope.1,
        };
        if cfg!(debug_assertions) {
            let mut check = seg;
            check.measure_error_bounds();
            assert_eq!(
                (check.under, check.over),
                envelope,
                "persisted error envelope disagrees with the page"
            );
            check
        } else {
            seg
        }
    }

    /// Whether page slot `i` holds a live (non-tombstoned) entry.
    #[inline]
    pub(crate) fn is_live(&self, i: usize) -> bool {
        self.dead.is_empty() || self.dead[i >> 6] & (1 << (i & 63)) == 0
    }

    /// Tombstones page slot `i`, allocating the bitmap on first use.
    fn mark_dead(&mut self, i: usize) {
        if self.dead.is_empty() {
            self.dead = vec![0u64; self.keys.len().div_ceil(64)];
        }
        debug_assert!(self.is_live(i));
        self.dead[i >> 6] |= 1 << (i & 63);
        self.removed += 1;
    }

    /// Resurrects page slot `i` (insert over a tombstone).
    fn mark_live(&mut self, i: usize) {
        debug_assert!(!self.is_live(i));
        self.dead[i >> 6] &= !(1 << (i & 63));
        self.removed -= 1;
    }

    /// One build-time pass measuring the page's actual prediction error
    /// envelope (`under`/`over`), which the window search intersects
    /// with the configured budget. O(page) with pure arithmetic.
    fn measure_error_bounds(&mut self) {
        let mut under = 0i64;
        let mut over = 0i64;
        for (i, &k) in self.keys.iter().enumerate() {
            let pred = self.predict(k) as i64;
            let d = i as i64 - pred;
            over = over.max(d);
            under = under.min(d);
        }
        self.under = (-under).min(u32::MAX as i64) as u32;
        self.over = over.min(u32::MAX as i64) as u32;
    }

    /// Live page entries (tombstones excluded).
    pub fn live_len(&self) -> usize {
        self.keys.len() - self.removed as usize
    }

    /// Live entries in page + buffer.
    pub fn len(&self) -> usize {
        self.live_len() + self.buffer.len()
    }

    /// First live page entry.
    fn first_live(&self) -> Option<(&K, &V)> {
        (0..self.keys.len())
            .find(|&i| self.is_live(i))
            .map(|i| (&self.keys[i], &self.values[i]))
    }

    /// Last live page entry.
    pub fn last_live(&self) -> Option<(&K, &V)> {
        (0..self.keys.len())
            .rev()
            .find(|&i| self.is_live(i))
            .map(|i| (&self.keys[i], &self.values[i]))
    }

    /// Smallest key stored anywhere in this segment.
    pub fn min_key(&self) -> Option<K> {
        match (self.first_live(), self.buffer.first()) {
            (Some((&d, _)), Some(&(b, _))) => Some(d.min(b)),
            (Some((&d, _)), None) => Some(d),
            (None, Some(&(b, _))) => Some(b),
            (None, None) => None,
        }
    }

    /// Largest key stored anywhere in this segment.
    pub fn max_key(&self) -> Option<K> {
        match (self.last_live(), self.buffer.last()) {
            (Some((&d, _)), Some(&(b, _))) => Some(d.max(b)),
            (Some((&d, _)), None) => Some(d),
            (None, Some(&(b, _))) => Some(b),
            (None, None) => None,
        }
    }

    /// Interpolated local slot for `key`, clamped into the page.
    ///
    /// Rounds to the nearest slot: the segmentation bound holds in real
    /// arithmetic, and rounding (plus one slot of window slack below)
    /// absorbs `f64` evaluation error in `(key − start) × slope`.
    pub fn predict(&self, key: K) -> usize {
        if self.keys.is_empty() {
            return 0;
        }
        let p = ((key.to_f64() - self.start_key_f) * self.slope).round();
        if p <= 0.0 {
            // Keys are NaN-free by construction (Key contract), so this
            // covers exactly the negative-or-zero predictions.
            return 0;
        }
        (p as usize).min(self.keys.len() - 1)
    }

    /// The bounded search window `(lo, hi, predicted)` (inclusive) for
    /// `key`: the measured per-page error envelope intersected with the
    /// `±(seg_error + 1)` budget (the `+ 1` covers `f64` rounding, see
    /// [`predict`](Self::predict)). Tombstones keep slots in place, so
    /// the window does **not** widen with removals, and the measured
    /// envelope stays exact until re-segmentation.
    #[inline]
    fn window(&self, key: K, seg_error: u64) -> (usize, usize, usize) {
        let pred = self.predict(key);
        let budget = seg_error as usize + 1;
        let lo = pred.saturating_sub(budget.min(self.under as usize));
        let hi = (pred + budget.min(self.over as usize)).min(self.keys.len().saturating_sub(1));
        (lo, hi, pred)
    }

    /// Exact-match probe of the page keys, honoring the error window —
    /// returns the slot whether it is live or tombstoned (callers that
    /// only want live hits use [`search_data`](Self::search_data); the
    /// insert path uses the raw slot to resurrect tombstones).
    #[inline]
    fn probe(&self, key: K, seg_error: u64, strategy: SearchStrategy) -> Option<usize> {
        if self.keys.is_empty() {
            return None;
        }
        let (lo, hi, pred) = self.window(key, seg_error);
        self.probe_in(key, lo, hi, pred, strategy)
    }

    /// [`probe`](Self::probe) over an already-computed window: the
    /// model is evaluated exactly once per lookup (in
    /// [`window`](Self::window)) and the prediction threaded through to
    /// the strategies that reuse it (exponential galloping).
    #[inline]
    fn probe_in(
        &self,
        key: K,
        lo: usize,
        hi: usize,
        pred: usize,
        strategy: SearchStrategy,
    ) -> Option<usize> {
        match strategy {
            SearchStrategy::Binary => {
                let window = &self.keys[lo..=hi];
                let idx = if window.len() <= SMALL_WINDOW {
                    // Count-based scan: no early exit, no branches —
                    // the compiler vectorizes the comparison loop over
                    // the dense key array.
                    lo + window.iter().filter(|&&k| k < key).count()
                } else {
                    lo + branchless_floor(window, &key)
                };
                (idx <= hi && self.keys[idx] == key).then_some(idx)
            }
            SearchStrategy::Linear => self.keys[lo..=hi]
                .iter()
                .position(|&k| k == key)
                .map(|i| lo + i),
            SearchStrategy::Exponential => self.search_exponential(key, lo, hi, pred),
            SearchStrategy::Interpolation => self.search_interpolation(key, lo, hi),
        }
    }

    /// Exact-match search in the page, honoring the error window.
    /// Returns the index into the page for a **live** slot.
    pub fn search_data(&self, key: K, seg_error: u64, strategy: SearchStrategy) -> Option<usize> {
        self.probe(key, seg_error, strategy)
            .filter(|&i| self.is_live(i))
    }

    /// Repeated interpolation within `[lo, hi]`, falling back to binary
    /// once the bracket is small or interpolation stops converging.
    fn search_interpolation(&self, key: K, mut lo: usize, mut hi: usize) -> Option<usize> {
        const BINARY_TAIL: usize = 8;
        let kf = key.to_f64();
        while hi - lo > BINARY_TAIL {
            let lk = self.keys[lo].to_f64();
            let hk = self.keys[hi].to_f64();
            if kf < lk || kf > hk {
                return None;
            }
            let span = hk - lk;
            let guess = if span > 0.0 {
                lo + (((kf - lk) / span) * (hi - lo) as f64) as usize
            } else {
                // Flat key range within the bracket: projection collapsed
                // (lossy to_f64) or duplicate-looking keys; bisect.
                (lo + hi) / 2
            };
            let guess = guess.clamp(lo, hi);
            match self.keys[guess].cmp(&key) {
                std::cmp::Ordering::Equal => return Some(guess),
                std::cmp::Ordering::Less => {
                    if guess == lo {
                        lo += 1; // force progress when interpolation stalls
                    } else {
                        lo = guess + 1;
                    }
                }
                std::cmp::Ordering::Greater => {
                    if guess == hi {
                        hi -= 1;
                    } else {
                        hi = guess.saturating_sub(1);
                    }
                }
            }
            if lo > hi {
                return None;
            }
        }
        self.keys[lo..=hi].binary_search(&key).ok().map(|i| lo + i)
    }

    /// Gallop outward from the (already-computed) prediction, then
    /// binary search the bracketed range.
    fn search_exponential(&self, key: K, lo: usize, hi: usize, pred: usize) -> Option<usize> {
        let pred = pred.clamp(lo, hi);
        let pk = self.keys[pred];
        let (mut a, mut b) = if pk == key {
            return Some(pred);
        } else if pk < key {
            // Gallop right.
            let mut step = 1usize;
            let mut prev = pred;
            loop {
                let next = (pred + step).min(hi);
                if next == prev {
                    break (prev, hi);
                }
                if self.keys[next] >= key {
                    break (prev, next);
                }
                prev = next;
                step *= 2;
            }
        } else {
            // Gallop left.
            let mut step = 1usize;
            let mut prev = pred;
            loop {
                let next = pred.saturating_sub(step).max(lo);
                if next == prev {
                    break (lo, prev);
                }
                if self.keys[next] <= key {
                    break (next, prev);
                }
                prev = next;
                step *= 2;
            }
        };
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        self.keys[a..=b].binary_search(&key).ok().map(|i| a + i)
    }

    /// Exact-match search in the buffer.
    pub fn search_buffer(&self, key: K) -> Option<usize> {
        self.buffer.binary_search_by(|(k, _)| k.cmp(&key)).ok()
    }

    /// Point lookup across page and buffer.
    pub fn get(&self, key: K, seg_error: u64, strategy: SearchStrategy) -> Option<&V> {
        if let Some(i) = self.probe(key, seg_error, strategy) {
            // A page key is never duplicated in the buffer, so a dead
            // hit means the key is absent.
            return self.is_live(i).then(|| &self.values[i]);
        }
        self.search_buffer(key).map(|i| &self.buffer[i].1)
    }

    /// Mutable point lookup across page and buffer.
    pub fn get_mut(&mut self, key: K, seg_error: u64, strategy: SearchStrategy) -> Option<&mut V> {
        if let Some(i) = self.probe(key, seg_error, strategy) {
            return self.is_live(i).then(move || &mut self.values[i]);
        }
        if let Some(i) = self.search_buffer(key) {
            return Some(&mut self.buffer[i].1);
        }
        None
    }

    /// Inserts into the segment: replaces in place if the key exists
    /// (page or buffer, resurrecting a tombstoned page slot), otherwise
    /// appends to the sorted buffer. Returns the previous value if any.
    pub fn insert(
        &mut self,
        key: K,
        value: V,
        seg_error: u64,
        strategy: SearchStrategy,
    ) -> Option<V> {
        if let Some(i) = self.probe(key, seg_error, strategy) {
            if self.is_live(i) {
                return Some(std::mem::replace(&mut self.values[i], value));
            }
            // Resurrect the tombstoned slot in place: the key was
            // logically absent, so there is no previous value.
            self.values[i] = value;
            self.mark_live(i);
            return None;
        }
        match self.buffer.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(i) => Some(std::mem::replace(&mut self.buffer[i].1, value)),
            Err(i) => {
                self.buffer.insert(i, (key, value));
                None
            }
        }
    }

    /// Removes `key` from the segment. Buffer entries are dropped;
    /// page entries become O(1) tombstones (the key keeps its slot, so
    /// predictions stay exact — the old shifting `Vec::remove` was
    /// O(page)). Returns the value if present; page removals clone it
    /// out, since the dense value array keeps the slot until the next
    /// re-segmentation. A convenience wrapper over
    /// [`remove_with`](Self::remove_with) — non-`Clone` values pass an
    /// extraction of their own (`mem::take`, `mem::replace`); the tree
    /// layer routes everything through `remove_with` directly, so this
    /// wrapper survives for in-crate callers and tests.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn remove(&mut self, key: K, seg_error: u64, strategy: SearchStrategy) -> Option<V>
    where
        V: Clone,
    {
        self.remove_with(key, seg_error, strategy, |v| v.clone())
    }

    /// [`remove`](Self::remove) with a caller-supplied extraction for
    /// the page case, so the operation works for **non-`Clone`**
    /// values. `extract` pulls the value out of the tombstoned slot
    /// (the dense value array keeps the slot until re-segmentation, so
    /// *something* must stay behind): `|v| v.clone()` for `Clone`
    /// types, `mem::take` for `Default` types, or a `mem::replace`
    /// with any placeholder. Buffer hits are moved out directly and
    /// never invoke it; the extracted slot is never read again.
    pub fn remove_with(
        &mut self,
        key: K,
        seg_error: u64,
        strategy: SearchStrategy,
        extract: impl FnOnce(&mut V) -> V,
    ) -> Option<V> {
        if let Some(i) = self.search_buffer(key) {
            return Some(self.buffer.remove(i).1);
        }
        if let Some(i) = self.search_data(key, seg_error, strategy) {
            let value = extract(&mut self.values[i]);
            self.mark_dead(i);
            return Some(value);
        }
        None
    }

    /// Merges live page entries and buffer into one sorted run,
    /// consuming the segment (the first step of the paper's Algorithm 4
    /// split). Tombstones are dropped here.
    pub fn into_merged(self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.live_len() + self.buffer.len());
        let dead = self.dead;
        let live = |i: &usize| dead.is_empty() || dead[i >> 6] & (1 << (i & 63)) == 0;
        let mut a = self
            .keys
            .into_iter()
            .zip(self.values)
            .enumerate()
            .filter(|(i, _)| live(i))
            .map(|(_, kv)| kv)
            .peekable();
        let mut b = self.buffer.into_iter().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    if x.0 <= y.0 {
                        out.push(a.next().expect("peeked"));
                    } else {
                        out.push(b.next().expect("peeked"));
                    }
                }
                (Some(_), None) => out.push(a.next().expect("peeked")),
                (None, Some(_)) => out.push(b.next().expect("peeked")),
                (None, None) => break,
            }
        }
        out
    }

    /// Estimated heap bytes of the page + buffer payload.
    pub fn payload_bytes(&self) -> usize {
        self.keys.len() * std::mem::size_of::<K>()
            + self.values.len() * std::mem::size_of::<V>()
            + self.dead.len() * std::mem::size_of::<u64>()
            + self.buffer.len() * std::mem::size_of::<(K, V)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(keys: &[u64]) -> Segment<u64, u64> {
        let data: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k * 10)).collect();
        // Slope from endpoints.
        let slope = if keys.len() > 1 {
            (keys.len() - 1) as f64 / (keys[keys.len() - 1] - keys[0]) as f64
        } else {
            0.0
        };
        Segment::new(keys[0], slope, data)
    }

    #[test]
    fn all_strategies_find_every_key() {
        let keys: Vec<u64> = (0..500).map(|i| i * 3).collect();
        let s = seg(&keys);
        for strategy in [
            SearchStrategy::Binary,
            SearchStrategy::Linear,
            SearchStrategy::Exponential,
            SearchStrategy::Interpolation,
        ] {
            for &k in &keys {
                assert_eq!(
                    s.get(k, 1, strategy),
                    Some(&(k * 10)),
                    "strategy {strategy:?} key {k}"
                );
            }
            assert_eq!(s.get(1, 1, strategy), None);
            assert_eq!(s.get(1_000_000, 1, strategy), None);
        }
    }

    #[test]
    fn binary_uses_both_window_regimes() {
        // Small error ⇒ the branchless scan; large error ⇒ the
        // branchless binary. Both must agree on hits and misses.
        let keys: Vec<u64> = (0..2_000).map(|i| i * 2).collect();
        let s = seg(&keys);
        for error in [1u64, 4, 11, 12, 64, 500] {
            for &k in keys.iter().step_by(37) {
                assert_eq!(s.get(k, error, SearchStrategy::Binary), Some(&(k * 10)));
                assert_eq!(s.get(k + 1, error, SearchStrategy::Binary), None);
            }
        }
    }

    #[test]
    fn interpolation_search_handles_skewed_windows() {
        // Highly non-uniform keys inside the window: interpolation's
        // guesses are bad, the forced-progress clamps must still
        // terminate and find every key.
        let keys: Vec<u64> = (0..200).map(|i| i * i * i).collect();
        let s = seg(&keys);
        for &k in &keys {
            assert_eq!(
                s.get(k, 200, SearchStrategy::Interpolation),
                Some(&(k * 10)),
                "key {k}"
            );
        }
        assert_eq!(s.get(5, 200, SearchStrategy::Interpolation), None);
    }

    #[test]
    fn interpolation_search_with_duplicate_projections() {
        // All keys identical is impossible for a clustered page, but a
        // flat span can arise from lossy to_f64; emulate with a dense run.
        let keys: Vec<u64> = (0..64).collect();
        let s = seg(&keys);
        for &k in &keys {
            assert_eq!(s.get(k, 64, SearchStrategy::Interpolation), Some(&(k * 10)));
        }
    }

    #[test]
    fn window_respects_error_budget() {
        // Deliberately bad slope: predictions land at slot 0 for every
        // key, so only keys within the window of slot 0 are findable.
        let data: Vec<(u64, u64)> = (0..100).map(|k| (k, k)).collect();
        let s = Segment::new(0u64, 0.0, data);
        assert_eq!(s.get(3, 5, SearchStrategy::Binary), Some(&3));
        // Slot 50 is outside the ±5 window around slot 0.
        assert_eq!(s.get(50, 5, SearchStrategy::Binary), None);
        // A wider budget finds it.
        assert_eq!(s.get(50, 64, SearchStrategy::Binary), Some(&50));
    }

    #[test]
    fn insert_buffers_and_replaces() {
        let mut s = seg(&[10, 20, 30]);
        assert_eq!(s.insert(15, 150, 2, SearchStrategy::Binary), None);
        assert_eq!(s.buffer.len(), 1);
        assert_eq!(s.get(15, 2, SearchStrategy::Binary), Some(&150));
        // Replace buffered value.
        assert_eq!(s.insert(15, 151, 2, SearchStrategy::Binary), Some(150));
        // Replace page value in place, not via buffer.
        assert_eq!(s.insert(20, 999, 2, SearchStrategy::Binary), Some(200));
        assert_eq!(s.buffer.len(), 1);
    }

    #[test]
    fn buffer_stays_sorted() {
        let mut s = seg(&[100]);
        for k in [50u64, 10, 70, 30] {
            s.insert(k, k, 1, SearchStrategy::Binary);
        }
        let buffered: Vec<u64> = s.buffer.iter().map(|(k, _)| *k).collect();
        assert_eq!(buffered, vec![10, 30, 50, 70]);
    }

    #[test]
    fn remove_tombstones_keep_predictions_exact() {
        let keys: Vec<u64> = (0..50).collect();
        let mut s = seg(&keys);
        // Remove a few early keys: tombstones keep every surviving key
        // at its slot, so even a ±1 window still finds them all.
        for k in 0..5u64 {
            assert_eq!(s.remove(k, 1, SearchStrategy::Binary), Some(k * 10));
            assert_eq!(s.get(k, 1, SearchStrategy::Binary), None, "key {k} dead");
        }
        assert_eq!(s.removed, 5);
        assert_eq!(s.live_len(), 45);
        for k in 5..50u64 {
            assert_eq!(s.get(k, 1, SearchStrategy::Binary), Some(&(k * 10)));
        }
    }

    #[test]
    fn tombstone_resurrection_via_insert() {
        let mut s = seg(&[10, 20, 30]);
        assert_eq!(s.remove(20, 2, SearchStrategy::Binary), Some(200));
        assert_eq!(s.removed, 1);
        assert_eq!(s.len(), 2);
        // Re-inserting the key reclaims the page slot — no buffer entry.
        assert_eq!(s.insert(20, 7, 2, SearchStrategy::Binary), None);
        assert_eq!(s.removed, 0);
        assert_eq!(s.buffer.len(), 0);
        assert_eq!(s.get(20, 2, SearchStrategy::Binary), Some(&7));
    }

    #[test]
    fn remove_with_extracts_non_clone_values() {
        // A deliberately non-Clone value type: the PR 3 note said
        // `remove` needed `V: Clone` only to clone out of a tombstoned
        // slot; `remove_with` relaxes that with a caller extraction.
        #[derive(Debug, Default, PartialEq)]
        struct Token(u64);
        let mut s: Segment<u64, Token> = Segment::new(
            10,
            1.0,
            vec![(10, Token(1)), (11, Token(2)), (12, Token(3))],
        );
        // Page hit: moved out via mem::take (V: Default).
        assert_eq!(
            s.remove_with(11, 2, SearchStrategy::Binary, std::mem::take),
            Some(Token(2))
        );
        assert_eq!(s.get(11, 2, SearchStrategy::Binary), None);
        assert_eq!(s.removed, 1);
        // Page hit: moved out via mem::replace with a placeholder.
        assert_eq!(
            s.remove_with(12, 2, SearchStrategy::Binary, |v| std::mem::replace(
                v,
                Token(u64::MAX)
            )),
            Some(Token(3))
        );
        // Buffer hit: moved out directly, extraction never called.
        s.insert(15, Token(5), 2, SearchStrategy::Binary);
        assert_eq!(
            s.remove_with(15, 2, SearchStrategy::Binary, |_| unreachable!(
                "buffer removals never extract"
            )),
            Some(Token(5))
        );
        // Miss.
        assert_eq!(
            s.remove_with(99, 2, SearchStrategy::Binary, std::mem::take),
            None
        );
        assert_eq!(s.get(10, 2, SearchStrategy::Binary), Some(&Token(1)));
    }

    #[test]
    fn remove_from_buffer_does_not_tombstone() {
        let mut s = seg(&[10, 20]);
        s.insert(15, 1, 1, SearchStrategy::Binary);
        assert_eq!(s.remove(15, 1, SearchStrategy::Binary), Some(1));
        assert_eq!(s.removed, 0);
        assert_eq!(s.remove(99, 1, SearchStrategy::Binary), None);
        // Double-remove of a page key: second call is a miss.
        assert_eq!(s.remove(10, 1, SearchStrategy::Binary), Some(100));
        assert_eq!(s.remove(10, 1, SearchStrategy::Binary), None);
        assert_eq!(s.removed, 1);
    }

    #[test]
    fn into_merged_interleaves_sorted_and_drops_tombstones() {
        let mut s = seg(&[10, 30, 50]);
        s.insert(20, 2, 1, SearchStrategy::Binary);
        s.insert(60, 6, 1, SearchStrategy::Binary);
        s.remove(30, 1, SearchStrategy::Binary);
        let merged: Vec<u64> = s.into_merged().into_iter().map(|(k, _)| k).collect();
        assert_eq!(merged, vec![10, 20, 50, 60]);
    }

    #[test]
    fn min_max_consider_buffer_and_skip_tombstones() {
        let mut s = seg(&[100, 200]);
        s.insert(5, 0, 1, SearchStrategy::Binary);
        s.insert(500, 0, 1, SearchStrategy::Binary);
        assert_eq!(s.min_key(), Some(5));
        assert_eq!(s.max_key(), Some(500));
        // Tombstoned endpoints no longer count.
        let mut t = seg(&[10, 20, 30]);
        t.remove(10, 2, SearchStrategy::Binary);
        t.remove(30, 2, SearchStrategy::Binary);
        assert_eq!(t.min_key(), Some(20));
        assert_eq!(t.max_key(), Some(20));
    }

    #[test]
    fn empty_page_lookups_hit_buffer_only() {
        let mut s: Segment<u64, u64> = Segment::new(0, 0.0, Vec::new());
        assert_eq!(s.get(1, 10, SearchStrategy::Binary), None);
        s.insert(1, 11, 10, SearchStrategy::Binary);
        assert_eq!(s.get(1, 10, SearchStrategy::Binary), Some(&11));
        assert_eq!(s.min_key(), Some(1));
    }
}
