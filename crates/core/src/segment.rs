//! A segment: one variable-sized table page plus its insert buffer.
//!
//! Each segment owns the sorted run of `(key, value)` pairs it covers
//! (the paper's variable-sized table page), the fitted slope used for
//! interpolation, and a fixed-capacity sorted delta buffer for inserts
//! (paper Section 5). Lookups interpolate a position from the slope,
//! then search only the `±seg_error` window around it — the bound the
//! segmentation algorithm guarantees — and finally the buffer.

use crate::key::Key;

/// How to search the bounded window around an interpolated position
/// (paper Section 4.1.2 lists binary, linear, and exponential search;
/// it defaults to binary and notes linear can win at very small errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchStrategy {
    /// Binary search over the window (the paper's default).
    #[default]
    Binary,
    /// Left-to-right scan of the window; fastest for tiny errors.
    Linear,
    /// Galloping outward from the predicted slot, then binary search in
    /// the bracketed range; adaptive when predictions are usually good.
    Exponential,
    /// Repeated interpolation inside the window (Graefe's in-page
    /// interpolation search, cited by the paper's Section 4.1.2):
    /// near-O(log log w) probes on locally uniform data, degrading to a
    /// bounded binary tail otherwise.
    Interpolation,
}

/// One variable-sized page of the clustered index.
#[derive(Debug, Clone)]
pub(crate) struct Segment<K, V> {
    /// Interpolation anchor: the first key the segmentation placed in
    /// this segment. Buffered inserts may hold smaller keys.
    pub start_key: K,
    /// Fitted slope (positions per key unit), from the segmentation cone.
    pub slope: f64,
    /// The sorted table page.
    pub data: Vec<(K, V)>,
    /// Sorted delta buffer; bounded by the tree's configured buffer size.
    pub buffer: Vec<(K, V)>,
    /// Elements removed from `data` since the last (re-)segmentation;
    /// widens the search window to keep the error guarantee (delete
    /// support is an extension over the paper).
    pub removed: u64,
}

impl<K: Key, V> Segment<K, V> {
    pub fn new(start_key: K, slope: f64, data: Vec<(K, V)>) -> Self {
        debug_assert!(data.windows(2).all(|w| w[0].0 <= w[1].0));
        Segment {
            start_key,
            slope,
            data,
            buffer: Vec::new(),
            removed: 0,
        }
    }

    /// Entries in page + buffer.
    pub fn len(&self) -> usize {
        self.data.len() + self.buffer.len()
    }

    /// Smallest key stored anywhere in this segment.
    pub fn min_key(&self) -> Option<K> {
        match (self.data.first(), self.buffer.first()) {
            (Some(&(d, _)), Some(&(b, _))) => Some(d.min(b)),
            (Some(&(d, _)), None) => Some(d),
            (None, Some(&(b, _))) => Some(b),
            (None, None) => None,
        }
    }

    /// Largest key stored anywhere in this segment.
    pub fn max_key(&self) -> Option<K> {
        match (self.data.last(), self.buffer.last()) {
            (Some(&(d, _)), Some(&(b, _))) => Some(d.max(b)),
            (Some(&(d, _)), None) => Some(d),
            (None, Some(&(b, _))) => Some(b),
            (None, None) => None,
        }
    }

    /// Interpolated local slot for `key`, clamped into the page.
    ///
    /// Rounds to the nearest slot: the segmentation bound holds in real
    /// arithmetic, and rounding (plus one slot of window slack below)
    /// absorbs `f64` evaluation error in `(key − start) × slope`.
    pub fn predict(&self, key: K) -> usize {
        if self.data.is_empty() {
            return 0;
        }
        let p = ((key.to_f64() - self.start_key.to_f64()) * self.slope).round();
        if p <= 0.0 {
            // Keys are NaN-free by construction (Key contract), so this
            // covers exactly the negative-or-zero predictions.
            return 0;
        }
        (p as usize).min(self.data.len() - 1)
    }

    /// The bounded search window `[lo, hi]` (inclusive) for `key`.
    ///
    /// One slot wider than the nominal `seg_error` budget to cover `f64`
    /// rounding in the prediction (see [`predict`](Self::predict)).
    fn window(&self, key: K, seg_error: u64) -> (usize, usize) {
        let pred = self.predict(key);
        let slack = (seg_error + self.removed) as usize + 1;
        let lo = pred.saturating_sub(slack);
        let hi = (pred + slack).min(self.data.len().saturating_sub(1));
        (lo, hi)
    }

    /// Exact-match search in the page, honoring the error window.
    /// Returns the index into `data`.
    pub fn search_data(&self, key: K, seg_error: u64, strategy: SearchStrategy) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let (lo, hi) = self.window(key, seg_error);
        match strategy {
            SearchStrategy::Binary => self.data[lo..=hi]
                .binary_search_by(|(k, _)| k.cmp(&key))
                .ok()
                .map(|i| lo + i),
            SearchStrategy::Linear => self.data[lo..=hi]
                .iter()
                .position(|(k, _)| *k == key)
                .map(|i| lo + i),
            SearchStrategy::Exponential => self.search_exponential(key, lo, hi),
            SearchStrategy::Interpolation => self.search_interpolation(key, lo, hi),
        }
    }

    /// Repeated interpolation within `[lo, hi]`, falling back to binary
    /// once the bracket is small or interpolation stops converging.
    fn search_interpolation(&self, key: K, mut lo: usize, mut hi: usize) -> Option<usize> {
        const BINARY_TAIL: usize = 8;
        let kf = key.to_f64();
        while hi - lo > BINARY_TAIL {
            let lk = self.data[lo].0.to_f64();
            let hk = self.data[hi].0.to_f64();
            if kf < lk || kf > hk {
                return None;
            }
            let span = hk - lk;
            let guess = if span > 0.0 {
                lo + (((kf - lk) / span) * (hi - lo) as f64) as usize
            } else {
                // Flat key range within the bracket: projection collapsed
                // (lossy to_f64) or duplicate-looking keys; bisect.
                (lo + hi) / 2
            };
            let guess = guess.clamp(lo, hi);
            match self.data[guess].0.cmp(&key) {
                std::cmp::Ordering::Equal => return Some(guess),
                std::cmp::Ordering::Less => {
                    if guess == lo {
                        lo += 1; // force progress when interpolation stalls
                    } else {
                        lo = guess + 1;
                    }
                }
                std::cmp::Ordering::Greater => {
                    if guess == hi {
                        hi -= 1;
                    } else {
                        hi = guess.saturating_sub(1);
                    }
                }
            }
            if lo > hi {
                return None;
            }
        }
        self.data[lo..=hi]
            .binary_search_by(|(k, _)| k.cmp(&key))
            .ok()
            .map(|i| lo + i)
    }

    /// Gallop outward from the prediction, then binary search the
    /// bracketed range.
    fn search_exponential(&self, key: K, lo: usize, hi: usize) -> Option<usize> {
        let pred = self.predict(key).clamp(lo, hi);
        let pk = self.data[pred].0;
        let (mut a, mut b) = if pk == key {
            return Some(pred);
        } else if pk < key {
            // Gallop right.
            let mut step = 1usize;
            let mut prev = pred;
            loop {
                let next = (pred + step).min(hi);
                if next == prev {
                    break (prev, hi);
                }
                if self.data[next].0 >= key {
                    break (prev, next);
                }
                prev = next;
                step *= 2;
            }
        } else {
            // Gallop left.
            let mut step = 1usize;
            let mut prev = pred;
            loop {
                let next = pred.saturating_sub(step).max(lo);
                if next == prev {
                    break (lo, prev);
                }
                if self.data[next].0 <= key {
                    break (next, prev);
                }
                prev = next;
                step *= 2;
            }
        };
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        self.data[a..=b]
            .binary_search_by(|(k, _)| k.cmp(&key))
            .ok()
            .map(|i| a + i)
    }

    /// Exact-match search in the buffer.
    pub fn search_buffer(&self, key: K) -> Option<usize> {
        self.buffer.binary_search_by(|(k, _)| k.cmp(&key)).ok()
    }

    /// Point lookup across page and buffer.
    pub fn get(&self, key: K, seg_error: u64, strategy: SearchStrategy) -> Option<&V> {
        if let Some(i) = self.search_data(key, seg_error, strategy) {
            return Some(&self.data[i].1);
        }
        self.search_buffer(key).map(|i| &self.buffer[i].1)
    }

    /// Mutable point lookup across page and buffer.
    pub fn get_mut(&mut self, key: K, seg_error: u64, strategy: SearchStrategy) -> Option<&mut V> {
        if let Some(i) = self.search_data(key, seg_error, strategy) {
            return Some(&mut self.data[i].1);
        }
        if let Some(i) = self.search_buffer(key) {
            return Some(&mut self.buffer[i].1);
        }
        None
    }

    /// Inserts into the segment: replaces in place if the key exists
    /// (page or buffer), otherwise appends to the sorted buffer.
    /// Returns the previous value if any.
    pub fn insert(
        &mut self,
        key: K,
        value: V,
        seg_error: u64,
        strategy: SearchStrategy,
    ) -> Option<V> {
        if let Some(i) = self.search_data(key, seg_error, strategy) {
            return Some(std::mem::replace(&mut self.data[i].1, value));
        }
        match self.buffer.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(i) => Some(std::mem::replace(&mut self.buffer[i].1, value)),
            Err(i) => {
                self.buffer.insert(i, (key, value));
                None
            }
        }
    }

    /// Removes `key` from the segment, tracking page removals so the
    /// search window widens accordingly. Returns the value if present.
    pub fn remove(&mut self, key: K, seg_error: u64, strategy: SearchStrategy) -> Option<V> {
        if let Some(i) = self.search_buffer(key) {
            return Some(self.buffer.remove(i).1);
        }
        if let Some(i) = self.search_data(key, seg_error, strategy) {
            self.removed += 1;
            return Some(self.data.remove(i).1);
        }
        None
    }

    /// Merges page and buffer into one sorted run, consuming the segment
    /// (the first step of the paper's Algorithm 4 split).
    pub fn into_merged(self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.data.len() + self.buffer.len());
        let mut a = self.data.into_iter().peekable();
        let mut b = self.buffer.into_iter().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    if x.0 <= y.0 {
                        out.push(a.next().expect("peeked"));
                    } else {
                        out.push(b.next().expect("peeked"));
                    }
                }
                (Some(_), None) => out.push(a.next().expect("peeked")),
                (None, Some(_)) => out.push(b.next().expect("peeked")),
                (None, None) => break,
            }
        }
        out
    }

    /// Estimated heap bytes of the page + buffer payload.
    pub fn payload_bytes(&self) -> usize {
        (self.data.len() + self.buffer.len()) * std::mem::size_of::<(K, V)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(keys: &[u64]) -> Segment<u64, u64> {
        let data: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k * 10)).collect();
        // Slope from endpoints.
        let slope = if keys.len() > 1 {
            (keys.len() - 1) as f64 / (keys[keys.len() - 1] - keys[0]) as f64
        } else {
            0.0
        };
        Segment::new(keys[0], slope, data)
    }

    #[test]
    fn all_strategies_find_every_key() {
        let keys: Vec<u64> = (0..500).map(|i| i * 3).collect();
        let s = seg(&keys);
        for strategy in [
            SearchStrategy::Binary,
            SearchStrategy::Linear,
            SearchStrategy::Exponential,
            SearchStrategy::Interpolation,
        ] {
            for &k in &keys {
                assert_eq!(
                    s.get(k, 1, strategy),
                    Some(&(k * 10)),
                    "strategy {strategy:?} key {k}"
                );
            }
            assert_eq!(s.get(1, 1, strategy), None);
            assert_eq!(s.get(1_000_000, 1, strategy), None);
        }
    }

    #[test]
    fn interpolation_search_handles_skewed_windows() {
        // Highly non-uniform keys inside the window: interpolation's
        // guesses are bad, the forced-progress clamps must still
        // terminate and find every key.
        let keys: Vec<u64> = (0..200).map(|i| i * i * i).collect();
        let s = seg(&keys);
        for &k in &keys {
            assert_eq!(
                s.get(k, 200, SearchStrategy::Interpolation),
                Some(&(k * 10)),
                "key {k}"
            );
        }
        assert_eq!(s.get(5, 200, SearchStrategy::Interpolation), None);
    }

    #[test]
    fn interpolation_search_with_duplicate_projections() {
        // All keys identical is impossible for a clustered page, but a
        // flat span can arise from lossy to_f64; emulate with a dense run.
        let keys: Vec<u64> = (0..64).collect();
        let s = seg(&keys);
        for &k in &keys {
            assert_eq!(s.get(k, 64, SearchStrategy::Interpolation), Some(&(k * 10)));
        }
    }

    #[test]
    fn window_respects_error_budget() {
        // Deliberately bad slope: predictions land at slot 0 for every
        // key, so only keys within the window of slot 0 are findable.
        let data: Vec<(u64, u64)> = (0..100).map(|k| (k, k)).collect();
        let s = Segment::new(0u64, 0.0, data);
        assert_eq!(s.get(3, 5, SearchStrategy::Binary), Some(&3));
        // Slot 50 is outside the ±5 window around slot 0.
        assert_eq!(s.get(50, 5, SearchStrategy::Binary), None);
        // A wider budget finds it.
        assert_eq!(s.get(50, 64, SearchStrategy::Binary), Some(&50));
    }

    #[test]
    fn insert_buffers_and_replaces() {
        let mut s = seg(&[10, 20, 30]);
        assert_eq!(s.insert(15, 150, 2, SearchStrategy::Binary), None);
        assert_eq!(s.buffer.len(), 1);
        assert_eq!(s.get(15, 2, SearchStrategy::Binary), Some(&150));
        // Replace buffered value.
        assert_eq!(s.insert(15, 151, 2, SearchStrategy::Binary), Some(150));
        // Replace page value in place, not via buffer.
        assert_eq!(s.insert(20, 999, 2, SearchStrategy::Binary), Some(200));
        assert_eq!(s.buffer.len(), 1);
    }

    #[test]
    fn buffer_stays_sorted() {
        let mut s = seg(&[100]);
        for k in [50u64, 10, 70, 30] {
            s.insert(k, k, 1, SearchStrategy::Binary);
        }
        let buffered: Vec<u64> = s.buffer.iter().map(|(k, _)| *k).collect();
        assert_eq!(buffered, vec![10, 30, 50, 70]);
    }

    #[test]
    fn remove_widens_window() {
        let keys: Vec<u64> = (0..50).collect();
        let mut s = seg(&keys);
        // Remove a few early keys: later predictions shift left.
        for k in 0..5u64 {
            assert_eq!(s.remove(k, 1, SearchStrategy::Binary), Some(k * 10));
        }
        assert_eq!(s.removed, 5);
        // Key 40 now lives at slot 35 but predicts 40; the widened
        // window still finds it.
        assert_eq!(s.get(40, 1, SearchStrategy::Binary), Some(&400));
    }

    #[test]
    fn remove_from_buffer_does_not_widen() {
        let mut s = seg(&[10, 20]);
        s.insert(15, 1, 1, SearchStrategy::Binary);
        assert_eq!(s.remove(15, 1, SearchStrategy::Binary), Some(1));
        assert_eq!(s.removed, 0);
        assert_eq!(s.remove(99, 1, SearchStrategy::Binary), None);
    }

    #[test]
    fn into_merged_interleaves_sorted() {
        let mut s = seg(&[10, 30, 50]);
        s.insert(20, 2, 1, SearchStrategy::Binary);
        s.insert(60, 6, 1, SearchStrategy::Binary);
        let merged: Vec<u64> = s.into_merged().into_iter().map(|(k, _)| k).collect();
        assert_eq!(merged, vec![10, 20, 30, 50, 60]);
    }

    #[test]
    fn min_max_consider_buffer() {
        let mut s = seg(&[100, 200]);
        s.insert(5, 0, 1, SearchStrategy::Binary);
        s.insert(500, 0, 1, SearchStrategy::Binary);
        assert_eq!(s.min_key(), Some(5));
        assert_eq!(s.max_key(), Some(500));
    }

    #[test]
    fn empty_page_lookups_hit_buffer_only() {
        let mut s: Segment<u64, u64> = Segment::new(0, 0.0, Vec::new());
        assert_eq!(s.get(1, 10, SearchStrategy::Binary), None);
        s.insert(1, 11, 10, SearchStrategy::Binary);
        assert_eq!(s.get(1, 10, SearchStrategy::Binary), Some(&11));
        assert_eq!(s.min_key(), Some(1));
    }
}
