//! Builder for [`FitingTree`] configuration.

use crate::clustered::FitingTree;
use crate::error::BuildError;
use crate::key::Key;
use crate::segment::SearchStrategy;

/// Configures and constructs a [`FitingTree`].
///
/// ```
/// use fiting_tree::{FitingTree, FitingTreeBuilder, SearchStrategy};
///
/// let index: FitingTree<u64, &str> = FitingTreeBuilder::new(100)
///     .buffer_size(32)                       // default: error / 2
///     .search_strategy(SearchStrategy::Exponential)
///     .build_empty()
///     .unwrap();
/// assert_eq!(index.error(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct FitingTreeBuilder {
    error: u64,
    buffer_size: Option<u64>,
    strategy: SearchStrategy,
}

impl FitingTreeBuilder {
    /// Starts a builder with the given error budget (in slots).
    #[must_use]
    pub fn new(error: u64) -> Self {
        FitingTreeBuilder {
            error,
            buffer_size: None,
            strategy: SearchStrategy::Binary,
        }
    }

    /// Sets the per-segment insert buffer capacity. Must be `< error`
    /// (the paper's `error − buffer_size` segmentation rule). Defaults to
    /// `error / 2`, the split used throughout the paper's evaluation.
    #[must_use]
    pub fn buffer_size(mut self, buffer_size: u64) -> Self {
        self.buffer_size = Some(buffer_size);
        self
    }

    /// Sets the in-segment search strategy (default: binary).
    #[must_use]
    pub fn search_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    // The `tree_order` knob was retired with the mutation-side B+
    // tree: the flat directory has no node order to tune.

    /// Builds an empty index ready for inserts.
    pub fn build_empty<K: Key, V>(self) -> Result<FitingTree<K, V>, BuildError> {
        let buffer = self.buffer_size.unwrap_or(self.error / 2);
        FitingTree::from_parts(self.error, buffer, self.strategy)
    }

    /// Bulk loads strictly increasing `(key, value)` pairs.
    pub fn bulk_load<K: Key, V, I>(self, iter: I) -> Result<FitingTree<K, V>, BuildError>
    where
        I: IntoIterator<Item = (K, V)>,
    {
        self.build_empty()?.bulk_load_sorted(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_buffer_is_half_the_error() {
        let t: FitingTree<u64, ()> = FitingTreeBuilder::new(100).build_empty().unwrap();
        assert_eq!(t.buffer_size(), 50);
        assert_eq!(t.segmentation_error(), 50);
    }

    #[test]
    fn rejects_buffer_eating_the_error() {
        let err = FitingTreeBuilder::new(10)
            .buffer_size(10)
            .build_empty::<u64, ()>()
            .unwrap_err();
        assert!(matches!(err, BuildError::BufferConsumesError { .. }));
        let err = FitingTreeBuilder::new(10)
            .buffer_size(11)
            .build_empty::<u64, ()>()
            .unwrap_err();
        assert!(matches!(err, BuildError::BufferConsumesError { .. }));
    }

    #[test]
    fn custom_knobs_apply() {
        let t: FitingTree<u64, ()> = FitingTreeBuilder::new(64)
            .buffer_size(8)
            .build_empty()
            .unwrap();
        assert_eq!(t.buffer_size(), 8);
        assert_eq!(t.segmentation_error(), 56);
    }
}
