//! Indexable key types — re-exported from the crate-neutral
//! `fiting-index-api`, where [`Key`] moved so that every index
//! structure (and the `SortedIndex` trait itself) shares one
//! definition. Kept as a module so `crate::key::Key` paths and the
//! public `fiting_tree::Key` re-export stay stable.

pub use fiting_index_api::{Key, OrderedF64};
