//! A thread-safe wrapper around [`FitingTree`] — an extension beyond the
//! paper, whose evaluation is single-threaded per core.
//!
//! The wrapper takes a `parking_lot` reader-writer lock around the whole
//! index: cheap shared lookups, exclusive writers. This is deliberately
//! coarse — the paper leaves concurrent FITing-Trees to future work, and
//! a crabbing/latching design belongs inside the directory tree, not
//! bolted on here. The wrapper exists so the examples and downstream
//! users can share an index across threads safely.

use crate::clustered::FitingTree;
use crate::key::Key;
use parking_lot::RwLock;
use std::sync::Arc;

/// Shared-ownership, reader-writer-locked FITing-Tree.
///
/// ```
/// use fiting_tree::{ConcurrentFitingTree, FitingTreeBuilder};
/// use std::thread;
///
/// let index = ConcurrentFitingTree::from(
///     FitingTreeBuilder::new(32)
///         .bulk_load((0..1000u64).map(|k| (k, k)))
///         .unwrap(),
/// );
/// let reader = index.clone();
/// let t = thread::spawn(move || reader.get(&500));
/// index.insert(1_000, 1_000);
/// assert_eq!(t.join().unwrap(), Some(500));
/// ```
pub struct ConcurrentFitingTree<K: Key, V> {
    inner: Arc<RwLock<FitingTree<K, V>>>,
}

impl<K: Key, V> Clone for ConcurrentFitingTree<K, V> {
    fn clone(&self) -> Self {
        ConcurrentFitingTree {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<K: Key, V> From<FitingTree<K, V>> for ConcurrentFitingTree<K, V> {
    fn from(tree: FitingTree<K, V>) -> Self {
        ConcurrentFitingTree {
            inner: Arc::new(RwLock::new(tree)),
        }
    }
}

impl<K: Key, V: Clone> ConcurrentFitingTree<K, V> {
    /// Point lookup under a shared lock; clones the value out.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<V> {
        self.inner.read().get(key).cloned()
    }

    /// Collects a range scan under a shared lock.
    #[must_use]
    pub fn range_collect(&self, range: impl std::ops::RangeBounds<K>) -> Vec<(K, V)> {
        self.inner
            .read()
            .range(range)
            .map(|(k, v)| (*k, v.clone()))
            .collect()
    }
}

impl<K: Key, V> ConcurrentFitingTree<K, V> {
    /// Insert under an exclusive lock.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.inner.write().insert(key, value)
    }

    /// Remove under an exclusive lock.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.inner.write().remove(key)
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Runs `f` with shared access to the underlying tree (for stats,
    /// iteration, or anything not covered by the convenience methods).
    pub fn with_read<R>(&self, f: impl FnOnce(&FitingTree<K, V>) -> R) -> R {
        f(&self.inner.read())
    }

    /// Runs `f` with exclusive access to the underlying tree.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut FitingTree<K, V>) -> R) -> R {
        f(&mut self.inner.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FitingTreeBuilder;
    use std::thread;

    #[test]
    fn concurrent_readers_and_writers() {
        let index = ConcurrentFitingTree::from(
            FitingTreeBuilder::new(64)
                .bulk_load((0..10_000u64).map(|k| (k * 2, k)))
                .unwrap(),
        );
        let mut handles = Vec::new();
        for t in 0..4 {
            let reader = index.clone();
            handles.push(thread::spawn(move || {
                let mut hits = 0;
                for k in (0..10_000u64).step_by(7) {
                    if reader.get(&(k * 2)).is_some() {
                        hits += 1;
                    }
                }
                let _ = t;
                hits
            }));
        }
        let writer = index.clone();
        let wh = thread::spawn(move || {
            for k in 0..500u64 {
                writer.insert(k * 2 + 1, k);
            }
        });
        for h in handles {
            assert!(h.join().unwrap() > 0);
        }
        wh.join().unwrap();
        assert_eq!(index.len(), 10_500);
        index.with_read(|t| t.check_invariants().unwrap());
    }

    #[test]
    fn with_write_exposes_full_api() {
        let index: ConcurrentFitingTree<u64, u64> =
            ConcurrentFitingTree::from(FitingTreeBuilder::new(16).build_empty().unwrap());
        index.with_write(|t| {
            for k in 0..100 {
                t.insert(k, k);
            }
        });
        assert_eq!(index.range_collect(10..13), vec![(10, 10), (11, 11), (12, 12)]);
        assert_eq!(index.remove(&10), Some(10));
        assert!(!index.is_empty());
    }
}
