//! Concurrent front-end for shared, multi-threaded use — an extension
//! beyond the paper, whose evaluation is single-threaded per core.
//!
//! Earlier revisions wrapped the whole index in a single
//! `parking_lot::RwLock`, serializing every write against every read.
//! The front-end is now the crate-neutral
//! [`ShardedIndex`](fiting_index_api::ShardedIndex): the key space is
//! range-partitioned into shards (boundaries sampled at bulk load),
//! each behind its own reader-writer lock, so point operations on
//! different shards proceed in parallel and a writer blocks only one
//! shard's readers. Cross-shard range scans and batched inserts visit
//! shards in ascending order, one lock at a time.
//!
//! [`ConcurrentFitingTree`] is kept as a thin alias so existing code
//! and examples keep compiling; `ConcurrentFitingTree::from(tree)`
//! still wraps an already-built index behind one lock (a single
//! shard), which is exactly the old behavior.

use crate::clustered::FitingTree;
use fiting_index_api::ShardedIndex;
use fiting_index_service::IndexService;

/// Shared-ownership, sharded, reader-writer-locked FITing-Tree.
///
/// ```
/// use fiting_tree::{ConcurrentFitingTree, FitingTreeBuilder};
/// use fiting_index_api::ShardedIndex;
/// use std::thread;
///
/// // Four shards, boundaries sampled from the bulk-load data.
/// let index: ConcurrentFitingTree<u64, u64> = ShardedIndex::bulk_load(
///     &FitingTreeBuilder::new(32),
///     4,
///     (0..1000u64).map(|k| (k, k)).collect(),
/// )
/// .unwrap();
/// let reader = index.clone();
/// let t = thread::spawn(move || reader.get(&500));
/// index.insert(1_000, 1_000);
/// assert_eq!(t.join().unwrap(), Some(500));
/// assert_eq!(index.len(), 1_001);
/// ```
pub type ConcurrentFitingTree<K, V> = ShardedIndex<K, V, FitingTree<K, V>>;

/// The command-pipeline service over a sharded FITing-Tree: bounded
/// per-shard queues, batching/coalescing workers, ticket completions,
/// and backpressure — the front-end to put under an RPC server.
///
/// ```
/// use fiting_tree::{FitingService, FitingTreeBuilder, ShardedIndex};
/// use fiting_index_service::ServiceConfig;
///
/// let index = ShardedIndex::bulk_load(
///     &FitingTreeBuilder::new(32),
///     4,
///     (0..10_000u64).map(|k| (k * 2, k)).collect(),
/// )
/// .unwrap();
/// let service = FitingService::start(index, ServiceConfig::default());
/// let client = service.client();
///
/// let hit = client.get(500);
/// let fresh = client.insert_many((0..100u64).map(|k| (k * 2 + 1, k)).collect());
/// assert_eq!(hit.wait(), Ok(Some(250)));
/// assert_eq!(fresh.wait(), Ok(100));
/// assert_eq!(service.shutdown().len(), 10_100);
/// ```
pub type FitingService<K, V> = IndexService<K, V, FitingTree<K, V>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FitingTreeBuilder;
    use std::thread;

    fn sharded(n: u64, shards: usize) -> ConcurrentFitingTree<u64, u64> {
        ShardedIndex::bulk_load(
            &FitingTreeBuilder::new(64),
            shards,
            (0..n).map(|k| (k * 2, k)).collect(),
        )
        .unwrap()
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let index = sharded(10_000, 8);
        assert_eq!(index.shard_count(), 8);
        let mut handles = Vec::new();
        for t in 0..4 {
            let reader = index.clone();
            handles.push(thread::spawn(move || {
                let mut hits = 0;
                for k in (0..10_000u64).step_by(7) {
                    if reader.get(&(k * 2)).is_some() {
                        hits += 1;
                    }
                }
                let _ = t;
                hits
            }));
        }
        let writer = index.clone();
        let wh = thread::spawn(move || {
            for k in 0..500u64 {
                writer.insert(k * 2 + 1, k);
            }
        });
        for h in handles {
            assert!(h.join().unwrap() > 0);
        }
        wh.join().unwrap();
        assert_eq!(index.len(), 10_500);
        index.for_each_shard(|t| t.check_invariants().unwrap());
    }

    #[test]
    fn from_wraps_one_shard_with_full_api() {
        let index: ConcurrentFitingTree<u64, u64> =
            ConcurrentFitingTree::from(FitingTreeBuilder::new(16).build_empty().unwrap());
        assert_eq!(index.shard_count(), 1);
        for k in 0..100 {
            index.insert(k, k);
        }
        assert_eq!(
            index.range_collect(10..13),
            vec![(10, 10), (11, 11), (12, 12)]
        );
        assert_eq!(index.remove(&10), Some(10));
        assert!(!index.is_empty());
        index.with_shard_read(&0, |t| t.check_invariants().unwrap());
    }

    #[test]
    fn cross_shard_scans_and_batched_inserts() {
        let index = sharded(10_000, 8);
        // A scan spanning every shard.
        let all = index.range_collect(..);
        assert_eq!(all.len(), 10_000);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
        // Batched insert touching all shards, one lock per shard.
        let fresh = index.insert_many((0..1_000u64).map(|k| (k * 20 + 1, k)));
        assert_eq!(fresh, 1_000);
        assert_eq!(index.len(), 11_000);
        index.for_each_shard(|t| t.check_invariants().unwrap());
    }
}
