//! Model-based and property tests for the FITing-Tree: under arbitrary
//! operation sequences it must behave exactly like `BTreeMap`, while
//! maintaining the paper's structural guarantees.

use fiting_tree::{FitingTreeBuilder, SearchStrategy, SecondaryIndex};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u32, u32),
    Remove(u32),
    Get(u32),
    Range(u32, u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u32>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k % 4096, v)),
        2 => any::<u32>().prop_map(|k| Op::Remove(k % 4096)),
        2 => any::<u32>().prop_map(|k| Op::Get(k % 4096)),
        1 => (any::<u32>(), any::<u32>()).prop_map(|(a, b)| Op::Range(a % 4096, b % 4096)),
    ]
}

fn run_against_model(error: u64, buffer: Option<u64>, seed_keys: Vec<u32>, ops: Vec<Op>) {
    let mut builder = FitingTreeBuilder::new(error);
    if let Some(b) = buffer {
        builder = builder.buffer_size(b);
    }
    let mut sorted: Vec<u32> = seed_keys;
    sorted.sort_unstable();
    sorted.dedup();
    let pairs: Vec<(u32, u32)> = sorted.iter().map(|&k| (k, k ^ 0xaaaa)).collect();
    let mut tree = builder.bulk_load(pairs.clone()).unwrap();
    let mut model: BTreeMap<u32, u32> = pairs.into_iter().collect();

    for op in ops {
        match op {
            Op::Insert(k, v) => {
                assert_eq!(tree.insert(k, v), model.insert(k, v), "insert {k}");
            }
            Op::Remove(k) => {
                assert_eq!(tree.remove(&k), model.remove(&k), "remove {k}");
            }
            Op::Get(k) => {
                assert_eq!(tree.get(&k), model.get(&k), "get {k}");
            }
            Op::Range(a, b) => {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let got: Vec<(u32, u32)> = tree.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
                let want: Vec<(u32, u32)> = model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
                assert_eq!(got, want, "range {lo}..={hi}");
            }
        }
        assert_eq!(tree.len(), model.len());
    }
    tree.check_invariants().unwrap();
    let got: Vec<u32> = tree.iter().map(|(k, _)| *k).collect();
    let want: Vec<u32> = model.keys().copied().collect();
    assert_eq!(got, want);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn agrees_with_btreemap_default_buffer(
        seed in proptest::collection::vec(any::<u32>().prop_map(|k| k % 4096), 0..300),
        ops in proptest::collection::vec(op_strategy(), 0..300),
        error in 2u64..128,
    ) {
        run_against_model(error, None, seed, ops);
    }

    #[test]
    fn agrees_with_btreemap_tiny_buffer(
        seed in proptest::collection::vec(any::<u32>().prop_map(|k| k % 4096), 0..200),
        ops in proptest::collection::vec(op_strategy(), 0..200),
    ) {
        // Buffer of 1: almost every insert triggers re-segmentation.
        run_against_model(8, Some(1), seed, ops);
    }

    #[test]
    fn agrees_with_btreemap_zero_error(
        seed in proptest::collection::vec(any::<u32>().prop_map(|k| k % 1024), 0..150),
        ops in proptest::collection::vec(op_strategy(), 0..150),
    ) {
        run_against_model(0, Some(0), seed, ops);
    }

    /// The error guarantee under churn: after any op sequence, every key
    /// present is found — meaning interpolation + windowed search never
    /// misses. (check_invariants verifies the window bound per key.)
    #[test]
    fn error_bound_survives_churn(
        ops in proptest::collection::vec(op_strategy(), 0..400),
    ) {
        run_against_model(16, None, (0..512u32).collect(), ops);
    }
}

/// The paper's per-dataset workloads, deterministic: bulk load real-shaped
/// data, hammer with lookups and inserts.
#[test]
fn dataset_shaped_workloads() {
    for ds in [
        fiting_datasets::Dataset::Weblogs,
        fiting_datasets::Dataset::Iot,
    ] {
        let keys = ds.generate(50_000, 99);
        let pairs: Vec<(u64, u64)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i as u64))
            .collect();
        for error in [16u64, 128, 1024] {
            let mut tree = FitingTreeBuilder::new(error)
                .bulk_load(pairs.clone())
                .unwrap();
            for (i, &k) in keys.iter().enumerate().step_by(101) {
                assert_eq!(tree.get(&k), Some(&(i as u64)), "{} e={error}", ds.name());
            }
            // Insert between existing keys.
            for &k in keys.iter().step_by(503) {
                tree.insert(k + 1, u64::MAX);
            }
            tree.check_invariants()
                .unwrap_or_else(|e| panic!("{} e={error}: {e}", ds.name()));
        }
    }
}

/// A secondary index over duplicate-heavy data agrees with a model
/// multimap.
#[test]
fn secondary_index_agrees_with_multimap() {
    let keys = fiting_datasets::Dataset::Maps.generate(30_000, 5);
    let pairs: Vec<(u64, u64)> = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u64))
        .collect();
    let idx = SecondaryIndex::bulk_load(64, pairs.clone()).unwrap();
    let mut model: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for (k, r) in pairs {
        model.entry(k).or_default().push(r);
    }
    for (k, rows) in model.iter().step_by(37) {
        let got: Vec<u64> = idx.get(k).collect();
        assert_eq!(&got, rows, "key {k}");
    }
    idx.check_invariants().unwrap();
}

/// Search strategies are interchangeable: same results on the same data.
#[test]
fn strategies_are_equivalent_under_churn() {
    let keys = fiting_datasets::Dataset::Iot.generate(20_000, 3);
    let pairs: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k)).collect();
    let mut trees: Vec<_> = [
        SearchStrategy::Binary,
        SearchStrategy::Linear,
        SearchStrategy::Exponential,
        SearchStrategy::Interpolation,
    ]
    .into_iter()
    .map(|s| {
        FitingTreeBuilder::new(64)
            .search_strategy(s)
            .bulk_load(pairs.clone())
            .unwrap()
    })
    .collect();
    for (i, &k) in keys.iter().enumerate().step_by(7) {
        let probe = if i % 2 == 0 { k } else { k + 1 };
        let results: Vec<Option<u64>> = trees.iter().map(|t| t.get(&probe).copied()).collect();
        assert!(results.windows(2).all(|w| w[0] == w[1]), "probe {probe}");
    }
    for t in &mut trees {
        for &k in keys.iter().step_by(211) {
            t.insert(k + 1, 0);
        }
        t.check_invariants().unwrap();
    }
}
