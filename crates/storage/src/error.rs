//! The storage fault taxonomy and retry policy.
//!
//! Every I/O failure crossing the crate boundary is a [`StorageError`]:
//! the raw [`std::io::Error`] plus *where* it happened ([`IoOp`] + path)
//! and *what it means* ([`FaultClass`]). The classification drives
//! policy mechanically:
//!
//! * [`FaultClass::Transient`] — the same call may succeed if simply
//!   repeated (`EINTR`, timeouts, spurious `WouldBlock`). A
//!   [`RetryPolicy`] absorbs these with capped exponential backoff
//!   before anyone upstream ever sees them.
//! * [`FaultClass::Permanent`] — repeating the call buys nothing
//!   (`ENOSPC`, `EIO`, permission, missing file). These surface
//!   immediately and flip the owning shard into degraded read-only
//!   mode (see [`DurableIndex`](crate::DurableIndex)).

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Which storage-layer operation failed — the vocabulary of the
/// [`StorageIo`](crate::StorageIo) trait, used both for error reports
/// and for targeting injected faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// Creating (truncating) a file.
    Create,
    /// Opening an existing file for appending.
    OpenAppend,
    /// Reading a whole file into memory.
    Read,
    /// Writing bytes through an open handle.
    Write,
    /// `fdatasync` on an open handle.
    Fsync,
    /// Atomically renaming a file.
    Rename,
    /// Deleting a file.
    RemoveFile,
    /// Creating a directory chain.
    CreateDir,
    /// Listing a directory.
    ReadDir,
    /// `fsync` on a directory (making renames/creates durable).
    SyncDir,
}

impl fmt::Display for IoOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IoOp::Create => "create",
            IoOp::OpenAppend => "open-append",
            IoOp::Read => "read",
            IoOp::Write => "write",
            IoOp::Fsync => "fsync",
            IoOp::Rename => "rename",
            IoOp::RemoveFile => "remove-file",
            IoOp::CreateDir => "create-dir",
            IoOp::ReadDir => "read-dir",
            IoOp::SyncDir => "sync-dir",
        };
        f.write_str(s)
    }
}

/// Whether repeating the failed call can help.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Repeat may succeed — absorbed by [`RetryPolicy`].
    Transient,
    /// Repeat cannot help — surfaces immediately, degrades the shard.
    Permanent,
}

/// A classified storage failure: operation, path, class, and the
/// underlying [`std::io::Error`].
#[derive(Debug)]
pub struct StorageError {
    op: IoOp,
    path: PathBuf,
    class: FaultClass,
    source: std::io::Error,
}

impl StorageError {
    /// Wraps `source`, classifying it by [`std::io::ErrorKind`]:
    /// `Interrupted`, `TimedOut`, and `WouldBlock` are transient,
    /// everything else (ENOSPC, EIO, permissions, corruption, missing
    /// files) is permanent.
    #[must_use]
    pub fn new(op: IoOp, path: &Path, source: std::io::Error) -> Self {
        use std::io::ErrorKind as K;
        let class = match source.kind() {
            K::Interrupted | K::TimedOut | K::WouldBlock => FaultClass::Transient,
            _ => FaultClass::Permanent,
        };
        StorageError {
            op,
            path: path.to_path_buf(),
            class,
            source,
        }
    }

    /// The operation that failed.
    #[must_use]
    pub fn op(&self) -> IoOp {
        self.op
    }

    /// The path the operation targeted (the *source* path for renames).
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Transient vs permanent classification.
    #[must_use]
    pub fn class(&self) -> FaultClass {
        self.class
    }

    /// Whether a retry may succeed.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        self.class == FaultClass::Transient
    }

    /// The underlying [`std::io::ErrorKind`].
    #[must_use]
    pub fn kind(&self) -> std::io::ErrorKind {
        self.source.kind()
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} on {}: {}",
            match self.class {
                FaultClass::Transient => "transient",
                FaultClass::Permanent => "permanent",
            },
            self.op,
            self.path.display(),
            self.source
        )
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Capped exponential backoff for [`FaultClass::Transient`] faults.
///
/// Each I/O call site gets a per-op budget of `attempts` tries; the
/// delay doubles from `base_delay` up to `max_delay`, with a
/// deterministic ±25% jitter (a seeded LCG, so two policies built the
/// same way back off the same way — schedules stay replayable).
/// Permanent faults are never retried.
#[derive(Debug)]
pub struct RetryPolicy {
    attempts: u32,
    base_delay: Duration,
    max_delay: Duration,
    jitter: AtomicU64,
}

impl Clone for RetryPolicy {
    fn clone(&self) -> Self {
        RetryPolicy {
            attempts: self.attempts,
            base_delay: self.base_delay,
            max_delay: self.max_delay,
            // ordering: Relaxed — the jitter word is advisory noise;
            // any torn/stale read still yields a valid jitter stream.
            jitter: AtomicU64::new(self.jitter.load(Ordering::Relaxed)),
        }
    }
}

impl Default for RetryPolicy {
    /// Production default: 4 attempts, 1 ms → 16 ms backoff.
    fn default() -> Self {
        RetryPolicy::new(4, Duration::from_millis(1), Duration::from_millis(16))
    }
}

impl RetryPolicy {
    /// A policy with `attempts` total tries (including the first) and
    /// the given backoff window.
    #[must_use]
    pub fn new(attempts: u32, base_delay: Duration, max_delay: Duration) -> Self {
        RetryPolicy {
            attempts: attempts.max(1),
            base_delay,
            max_delay,
            jitter: AtomicU64::new(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// No retries at all — every fault surfaces on the first failure.
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy::new(1, Duration::ZERO, Duration::ZERO)
    }

    /// Retries without sleeping — for deterministic tests where wall
    /// clock time must not depend on the injected schedule.
    #[must_use]
    pub fn immediate(attempts: u32) -> Self {
        RetryPolicy::new(attempts, Duration::ZERO, Duration::ZERO)
    }

    /// Total tries per operation (including the first).
    #[must_use]
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Runs `f`, retrying transient failures up to the attempt budget
    /// with capped exponential backoff. Each absorbed retry increments
    /// `retries` (the caller's observability counter). The last error
    /// is returned when the budget runs out; permanent failures return
    /// immediately.
    pub fn run<T>(
        &self,
        retries: &AtomicU64,
        mut f: impl FnMut() -> Result<T, StorageError>,
    ) -> Result<T, StorageError> {
        let mut delay = self.base_delay;
        for attempt in 1..=self.attempts {
            match f() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt < self.attempts => {
                    // ordering: Relaxed — monotonic stats counter read
                    // only by racy snapshots.
                    retries.fetch_add(1, Ordering::Relaxed);
                    if !delay.is_zero() {
                        std::thread::sleep(self.jittered(delay));
                    }
                    delay = (delay * 2).min(self.max_delay);
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("loop returns on the final attempt");
    }

    /// `delay` ± 25%, driven by a seeded LCG so backoff is
    /// reproducible.
    fn jittered(&self, delay: Duration) -> Duration {
        // ordering: Relaxed — see `jitter` field note; the RMW need not
        // be atomic with respect to other state.
        let x = self
            .jitter
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |x| {
                Some(
                    x.wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add(1_442_695_040_888_963_407),
                )
            })
            .unwrap_or(0);
        let nanos = delay.as_nanos() as u64;
        let quarter = nanos / 4;
        if quarter == 0 {
            return delay;
        }
        let offset = (x >> 11) % (2 * quarter);
        Duration::from_nanos(nanos - quarter + offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io;

    fn err(kind: io::ErrorKind) -> StorageError {
        StorageError::new(
            IoOp::Write,
            Path::new("/x/wal.1"),
            io::Error::new(kind, "boom"),
        )
    }

    #[test]
    fn classification_by_kind() {
        assert!(err(io::ErrorKind::Interrupted).is_transient());
        assert!(err(io::ErrorKind::TimedOut).is_transient());
        assert!(err(io::ErrorKind::WouldBlock).is_transient());
        assert!(!err(io::ErrorKind::StorageFull).is_transient());
        assert!(!err(io::ErrorKind::NotFound).is_transient());
        assert!(!err(io::ErrorKind::Other).is_transient());
        let e = err(io::ErrorKind::StorageFull);
        assert_eq!(e.op(), IoOp::Write);
        assert_eq!(e.class(), FaultClass::Permanent);
        assert!(e.to_string().contains("permanent write"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn retry_absorbs_transients_within_budget() {
        let policy = RetryPolicy::immediate(3);
        let retries = AtomicU64::new(0);
        let mut left = 2;
        let out = policy.run(&retries, || {
            if left > 0 {
                left -= 1;
                Err(err(io::ErrorKind::Interrupted))
            } else {
                Ok(7)
            }
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(retries.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn retry_budget_exhaustion_returns_last_error() {
        let policy = RetryPolicy::immediate(3);
        let retries = AtomicU64::new(0);
        let out: Result<(), _> = policy.run(&retries, || Err(err(io::ErrorKind::Interrupted)));
        assert!(out.unwrap_err().is_transient());
        assert_eq!(retries.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn permanent_fault_never_retried() {
        let policy = RetryPolicy::immediate(5);
        let retries = AtomicU64::new(0);
        let out: Result<(), _> = policy.run(&retries, || Err(err(io::ErrorKind::StorageFull)));
        assert!(!out.unwrap_err().is_transient());
        assert_eq!(retries.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn jitter_stays_within_quarter_band() {
        let policy = RetryPolicy::new(2, Duration::from_millis(8), Duration::from_millis(8));
        for _ in 0..64 {
            let d = policy.jittered(Duration::from_millis(8));
            assert!((Duration::from_millis(6)..=Duration::from_millis(10)).contains(&d));
        }
    }
}
