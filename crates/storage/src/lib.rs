//! Durability layer for the FITing-Tree workspace: snapshot pages +
//! write-ahead log + crash-consistent recovery.
//!
//! The rest of the workspace is volatile by design — the paper's
//! evaluation is in-memory — but the FITing-Tree's size advantage
//! (Section 6.2) matters most at scales where restart cost does too.
//! This crate adds the missing layer without touching the in-memory
//! hot paths:
//!
//! * [`wal`] — the per-shard write-ahead log: per-record CRC32,
//!   group-commit batching, [`FsyncPolicy`] knobs, and a replay that
//!   truncates at the first torn/corrupt record.
//! * [`DurableIndex`] — wraps any [`SortedIndex`] structure that can
//!   snapshot itself ([`PageSnapshot`], implemented for `FitingTree`
//!   via the core snapshot codec), logging every mutation and
//!   checkpointing on demand. Implements `SortedIndex` +
//!   `BuildableIndex`, so it drops into [`ShardedIndex`] and the
//!   service layer unchanged — rebalance splits/merges rotate the
//!   per-shard logs automatically.
//!
//! [`SortedIndex`]: fiting_index_api::SortedIndex
//! [`ShardedIndex`]: fiting_index_api::ShardedIndex
//! * [`open_sharded`] — store-level recovery: reopen every shard
//!   (newest intact snapshot + WAL tail), reassemble the
//!   `ShardedIndex`.
//!
//! Restart cost is the point: replaying a bounded WAL tail over a
//! decoded snapshot is far cheaper than re-running segmentation over
//! the full dataset — the `durability` bench bin records the ratio at
//! n=10M into `BENCH_durability.json`.
//!
//! # Quickstart
//!
//! ```
//! use fiting_index_api::SortedIndex;
//! use fiting_storage::{DurableConfig, DurableIndex, FsyncPolicy};
//! use fiting_tree::{FitingTree, FitingTreeBuilder};
//! use fiting_index_api::BuildableIndex;
//!
//! let root = std::env::temp_dir().join(format!("fiting-doc-{}", std::process::id()));
//! let config = DurableConfig::new(&root, FsyncPolicy::Always, FitingTreeBuilder::new(32)).unwrap();
//!
//! // Build a durable shard, mutate it, group-commit.
//! let mut index: DurableIndex<u64, u64> =
//!     DurableIndex::build_sorted(&config, (0..1000u64).map(|k| (k * 2, k)).collect()).unwrap();
//! index.insert(1001, 7);
//! index.remove(&0);
//! index.sync(); // durable up to here
//! let dir = index.shard_dir().to_path_buf();
//! drop(index); // "crash"
//!
//! // Reopen: snapshot + WAL replay.
//! let (recovered, info) = DurableIndex::<u64, u64, FitingTree<u64, u64>>::open_shard(&config, &dir).unwrap();
//! assert_eq!(recovered.get(&1001), Some(&7));
//! assert_eq!(recovered.get(&0), None);
//! assert_eq!(info.replayed, 2);
//! # std::fs::remove_dir_all(&root).unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod durable;
pub mod wal;

pub use durable::{
    open_sharded, DurableConfig, DurableIndex, OpenError, PageSnapshot, RecoveredStore,
    ShardRecovery, StorageBuildError,
};
pub use wal::{FsyncPolicy, Replay, ReplayOp, Wal, WalOp};

// Re-exported so durability consumers can checksum without depending
// on the core crate directly.
pub use fiting_tree::snapshot::{crc32, SnapshotError};

#[cfg(test)]
mod tests {
    use super::*;
    use fiting_index_api::{BuildableIndex, SortedIndex};
    use fiting_tree::{FitingTree, FitingTreeBuilder};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_root(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "fiting-storage-{}-{}-{tag}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn config(root: &PathBuf) -> DurableConfig<FitingTreeBuilder> {
        DurableConfig::new(root, FsyncPolicy::EveryN(4), FitingTreeBuilder::new(64)).unwrap()
    }

    type Durable = DurableIndex<u64, u64, FitingTree<u64, u64>>;

    #[test]
    fn build_mutate_reopen_recovers_everything_synced() {
        let root = temp_root("reopen");
        let cfg = config(&root);
        let mut idx: Durable =
            DurableIndex::build_sorted(&cfg, (0..5000u64).map(|k| (k * 2, k)).collect()).unwrap();
        assert_eq!(idx.name(), "Durable");
        assert!(idx.disk_bytes() > 0);
        assert_eq!(idx.wal_bytes(), 0);

        idx.insert(9999, 1);
        idx.remove(&0);
        idx.insert_many(vec![(11111, 2), (11113, 3)]);
        assert!(idx.wal_bytes() > 0);
        assert!(idx.sync());
        let dir = idx.shard_dir().to_path_buf();
        let expect: Vec<(u64, u64)> = idx.range(..).collect();
        drop(idx);

        let (back, info) = Durable::open_shard(&cfg, &dir).unwrap();
        assert_eq!(info.replayed, 3);
        assert!(!info.wal_truncated);
        assert_eq!(back.range(..).collect::<Vec<_>>(), expect);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn checkpoint_rotates_generation_and_empties_wal() {
        let root = temp_root("ckpt");
        let cfg = config(&root);
        let mut idx: Durable =
            DurableIndex::build_sorted(&cfg, (0..1000u64).map(|k| (k, k)).collect()).unwrap();
        idx.insert(5000, 5);
        assert!(idx.wal_bytes() > 0);
        assert_eq!(idx.generation(), 0);
        assert!(SortedIndex::checkpoint(&mut idx));
        assert_eq!(idx.generation(), 1);
        assert_eq!(idx.wal_bytes(), 0);
        // Old generation files are gone; new pair exists.
        let dir = idx.shard_dir().to_path_buf();
        assert!(!dir.join("snapshot.000000").exists());
        assert!(!dir.join("wal.000000").exists());
        assert!(dir.join("snapshot.000001").exists());
        assert!(dir.join("wal.000001").exists());
        drop(idx);
        let (back, info) = Durable::open_shard(&cfg, &dir).unwrap();
        assert_eq!(info.generation, 1);
        assert_eq!(info.replayed, 0);
        assert_eq!(back.get(&5000), Some(&5));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_older_generation() {
        let root = temp_root("fallback");
        let cfg = config(&root);
        let mut idx: Durable =
            DurableIndex::build_sorted(&cfg, (0..500u64).map(|k| (k, k)).collect()).unwrap();
        idx.insert(9000, 9);
        idx.sync();
        let dir = idx.shard_dir().to_path_buf();
        drop(idx);
        // Plant a corrupt "newer" snapshot; recovery must skip it and
        // use generation 0 + its log.
        std::fs::write(dir.join("snapshot.000007"), b"garbage").unwrap();
        let (back, info) = Durable::open_shard(&cfg, &dir).unwrap();
        assert_eq!(info.generation, 0);
        assert_eq!(info.replayed, 1);
        assert_eq!(back.get(&9000), Some(&9));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn sharded_store_splits_merges_and_reopens() {
        use fiting_index_api::ShardedIndex;
        let root = temp_root("sharded");
        let cfg = config(&root);
        let index: ShardedIndex<u64, u64, Durable> =
            ShardedIndex::bulk_load(&cfg, 4, (0..8000u64).map(|k| (k, k)).collect()).unwrap();
        assert_eq!(index.shard_count(), 4);

        // Native split path rotates logs and mints a new shard dir.
        let moved = index.split_shard(&cfg, 0, 1000).unwrap();
        assert!(moved > 0);
        assert_eq!(index.shard_count(), 5);
        // Merge drains a shard; its directory stays behind (empty).
        index.merge_with_next(0).unwrap();
        assert_eq!(index.shard_count(), 4);

        index.insert(90001, 42);
        assert_eq!(index.sync_all(), 4);
        let stats = index.shard_stats();
        assert!(stats.iter().all(|s| s.disk_bytes > 0));
        assert!(stats.iter().any(|s| s.wal_bytes > 0));
        let expect = index.len();
        drop(index);

        let (back, recoveries) = open_sharded::<u64, u64, FitingTree<u64, u64>>(&cfg).unwrap();
        // Six dirs on disk (4 bulk + 1 split + … minus none deleted),
        // but the drained one recovers empty and is skipped.
        assert!(recoveries.len() >= 5);
        assert_eq!(back.len(), expect);
        assert_eq!(back.get(&90001), Some(42));
        assert_eq!(back.get(&500), Some(500));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn checkpoint_shards_honors_wal_threshold() {
        use fiting_index_api::ShardedIndex;
        let root = temp_root("threshold");
        let cfg = config(&root);
        let index: ShardedIndex<u64, u64, Durable> =
            ShardedIndex::bulk_load(&cfg, 2, (0..2000u64).map(|k| (k, k)).collect()).unwrap();
        // Write into only the low shard.
        index.insert(1, 1);
        index.sync_all();
        assert_eq!(index.checkpoint_shards(1), 1);
        assert_eq!(index.checkpoint_shards(1), 0);
        // Threshold 0 checkpoints everything.
        assert_eq!(index.checkpoint_shards(0), 2);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
