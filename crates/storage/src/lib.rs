//! Durability layer for the FITing-Tree workspace: snapshot pages +
//! write-ahead log + crash-consistent recovery, behind an injectable
//! I/O boundary with a classified fault taxonomy.
//!
//! The rest of the workspace is volatile by design — the paper's
//! evaluation is in-memory — but the FITing-Tree's size advantage
//! (Section 6.2) matters most at scales where restart cost does too.
//! This crate adds the missing layer without touching the in-memory
//! hot paths:
//!
//! * [`io`] — the [`StorageIo`] boundary every durable-path syscall
//!   crosses: [`RealIo`] in production, [`FaultIo`] (a deterministic,
//!   seeded fault harness) in the chaos battery.
//! * [`error`] — the fault taxonomy: every failure is a
//!   [`StorageError`] classified transient vs permanent
//!   ([`FaultClass`]); a [`RetryPolicy`] absorbs transients with
//!   capped, jittered exponential backoff before anyone upstream sees
//!   them.
//! * [`wal`] — the per-shard write-ahead log: per-record CRC32,
//!   group-commit batching, [`FsyncPolicy`] knobs, and a replay that
//!   truncates at the first torn/corrupt record.
//! * [`DurableIndex`] — wraps any [`SortedIndex`] structure that can
//!   snapshot itself ([`PageSnapshot`], implemented for `FitingTree`
//!   via the core snapshot codec), logging every mutation and
//!   checkpointing on demand. Implements `SortedIndex` +
//!   `BuildableIndex`, so it drops into [`ShardedIndex`] and the
//!   service layer unchanged — rebalance splits/merges rotate the
//!   per-shard logs automatically. A permanent WAL/checkpoint fault
//!   flips the shard into degraded read-only mode (typed refusals on
//!   the `try_*` vocabulary, reads unaffected) until a successful
//!   checkpoint heals it.
//!
//! [`SortedIndex`]: fiting_index_api::SortedIndex
//! [`ShardedIndex`]: fiting_index_api::ShardedIndex
//! * [`open_sharded`] — store-level recovery: reopen every shard
//!   (newest intact snapshot + WAL tail), reconcile overlapping spans
//!   left by an interrupted split/merge, skip-and-report
//!   unrecoverable directories, reassemble the `ShardedIndex`.
//!
//! Restart cost is the point: replaying a bounded WAL tail over a
//! decoded snapshot is far cheaper than re-running segmentation over
//! the full dataset — the `durability` bench bin records the ratio at
//! n=10M into `BENCH_durability.json`.
//!
//! # Quickstart
//!
//! ```
//! use fiting_index_api::SortedIndex;
//! use fiting_storage::{DurableConfig, DurableIndex, FsyncPolicy};
//! use fiting_tree::{FitingTree, FitingTreeBuilder};
//! use fiting_index_api::BuildableIndex;
//!
//! let root = std::env::temp_dir().join(format!("fiting-doc-{}", std::process::id()));
//! let config = DurableConfig::new(&root, FsyncPolicy::Always, FitingTreeBuilder::new(32)).unwrap();
//!
//! // Build a durable shard, mutate it, group-commit.
//! let mut index: DurableIndex<u64, u64> =
//!     DurableIndex::build_sorted(&config, (0..1000u64).map(|k| (k * 2, k)).collect()).unwrap();
//! index.insert(1001, 7);
//! index.remove(&0);
//! index.sync(); // durable up to here
//! let dir = index.shard_dir().to_path_buf();
//! drop(index); // "crash"
//!
//! // Reopen: snapshot + WAL replay.
//! let (recovered, info) = DurableIndex::<u64, u64, FitingTree<u64, u64>>::open_shard(&config, &dir).unwrap();
//! assert_eq!(recovered.get(&1001), Some(&7));
//! assert_eq!(recovered.get(&0), None);
//! assert_eq!(info.replayed, 2);
//! # std::fs::remove_dir_all(&root).unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod durable;
pub mod error;
pub mod fault;
pub mod io;
pub mod wal;

pub use durable::{
    open_sharded, DurableConfig, DurableIndex, OpenError, PageSnapshot, RecoveredStore,
    ShardRecovery, SkippedShard, StorageBuildError, StoreReport,
};
pub use error::{FaultClass, IoOp, RetryPolicy, StorageError};
pub use fault::{FaultIo, FaultPlan, InjectKind};
pub use io::{IoFile, RealIo, StorageIo};
pub use wal::{decode_records, FsyncPolicy, Replay, ReplayOp, Wal, WalOp};

// Re-exported so durability consumers can checksum without depending
// on the core crate directly.
pub use fiting_tree::snapshot::{crc32, SnapshotError};

#[cfg(test)]
mod tests {
    use super::*;
    use fiting_index_api::{BuildableIndex, ShardHealth, SortedIndex};
    use fiting_tree::{FitingTree, FitingTreeBuilder};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    static SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_root(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "fiting-storage-{}-{}-{tag}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn config(root: &PathBuf) -> DurableConfig<FitingTreeBuilder> {
        DurableConfig::new(root, FsyncPolicy::EveryN(4), FitingTreeBuilder::new(64)).unwrap()
    }

    fn fault_config(root: &PathBuf, io: &FaultIo) -> DurableConfig<FitingTreeBuilder> {
        DurableConfig::with_io(
            root,
            FsyncPolicy::Always,
            FitingTreeBuilder::new(64),
            Arc::new(io.clone()),
            RetryPolicy::immediate(3),
        )
        .unwrap()
    }

    type Durable = DurableIndex<u64, u64, FitingTree<u64, u64>>;

    #[test]
    fn build_mutate_reopen_recovers_everything_synced() {
        let root = temp_root("reopen");
        let cfg = config(&root);
        let mut idx: Durable =
            DurableIndex::build_sorted(&cfg, (0..5000u64).map(|k| (k * 2, k)).collect()).unwrap();
        assert_eq!(idx.name(), "Durable");
        assert!(idx.disk_bytes() > 0);
        assert_eq!(idx.wal_bytes(), 0);

        idx.insert(9999, 1);
        idx.remove(&0);
        idx.insert_many(vec![(11111, 2), (11113, 3)]);
        assert!(idx.wal_bytes() > 0);
        assert!(idx.sync());
        let dir = idx.shard_dir().to_path_buf();
        let expect: Vec<(u64, u64)> = idx.range(..).collect();
        drop(idx);

        let (back, info) = Durable::open_shard(&cfg, &dir).unwrap();
        assert_eq!(info.replayed, 3);
        assert!(!info.wal_truncated);
        assert_eq!(back.range(..).collect::<Vec<_>>(), expect);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn checkpoint_rotates_generation_and_empties_wal() {
        let root = temp_root("ckpt");
        let cfg = config(&root);
        let mut idx: Durable =
            DurableIndex::build_sorted(&cfg, (0..1000u64).map(|k| (k, k)).collect()).unwrap();
        idx.insert(5000, 5);
        assert!(idx.wal_bytes() > 0);
        assert_eq!(idx.generation(), 0);
        assert!(SortedIndex::checkpoint(&mut idx));
        assert_eq!(idx.generation(), 1);
        assert_eq!(idx.wal_bytes(), 0);
        // Old generation files are gone; new pair exists.
        let dir = idx.shard_dir().to_path_buf();
        assert!(!dir.join("snapshot.000000").exists());
        assert!(!dir.join("wal.000000").exists());
        assert!(dir.join("snapshot.000001").exists());
        assert!(dir.join("wal.000001").exists());
        drop(idx);
        let (back, info) = Durable::open_shard(&cfg, &dir).unwrap();
        assert_eq!(info.generation, 1);
        assert_eq!(info.replayed, 0);
        assert_eq!(back.get(&5000), Some(&5));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_older_generation() {
        let root = temp_root("fallback");
        let cfg = config(&root);
        let mut idx: Durable =
            DurableIndex::build_sorted(&cfg, (0..500u64).map(|k| (k, k)).collect()).unwrap();
        idx.insert(9000, 9);
        idx.sync();
        let dir = idx.shard_dir().to_path_buf();
        drop(idx);
        // Plant a corrupt "newer" snapshot; recovery must skip it and
        // use generation 0 + its log.
        std::fs::write(dir.join("snapshot.000007"), b"garbage").unwrap();
        let (back, info) = Durable::open_shard(&cfg, &dir).unwrap();
        assert_eq!(info.generation, 0);
        assert_eq!(info.replayed, 1);
        assert_eq!(back.get(&9000), Some(&9));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn reopen_carries_unflushable_acknowledged_records() {
        let root = temp_root("carry");
        let io = FaultIo::quiet();
        let cfg = fault_config(&root, &io);
        let mut idx: Durable =
            DurableIndex::build_sorted(&cfg, (0..100u64).map(|k| (k, k)).collect()).unwrap();
        // Acknowledged but never committed: lives only in the buffer.
        assert_eq!(idx.try_insert(7777, 70), Ok(None));
        assert_eq!(idx.try_remove(&0), Ok(Some(0)));
        // The reopen's own flush attempt hits ENOSPC — the records
        // must ride across the reload instead of dying with the
        // handle (this is the lane-resurrection path).
        io.fail_nth(IoOp::Write, "wal.000000", 1, InjectKind::Enospc, false);
        assert!(idx.reload());
        assert_eq!(idx.get(&7777), Some(&70));
        assert_eq!(idx.get(&0), None);
        // The carried suffix was re-logged and committed by the
        // reopen; a second, fully clean reload proves it hit disk.
        assert!(idx.reload());
        assert_eq!(idx.get(&7777), Some(&70));
        assert_eq!(idx.get(&0), None);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn sharded_store_splits_merges_and_reopens() {
        use fiting_index_api::ShardedIndex;
        let root = temp_root("sharded");
        let cfg = config(&root);
        let index: ShardedIndex<u64, u64, Durable> =
            ShardedIndex::bulk_load(&cfg, 4, (0..8000u64).map(|k| (k, k)).collect()).unwrap();
        assert_eq!(index.shard_count(), 4);

        // Native split path rotates logs and mints a new shard dir.
        let moved = index.split_shard(&cfg, 0, 1000).unwrap();
        assert!(moved > 0);
        assert_eq!(index.shard_count(), 5);
        // Merge drains a shard; its directory stays behind (empty).
        index.merge_with_next(0).unwrap();
        assert_eq!(index.shard_count(), 4);

        index.insert(90001, 42);
        assert_eq!(index.sync_all(), 4);
        let stats = index.shard_stats();
        assert!(stats.iter().all(|s| s.disk_bytes > 0));
        assert!(stats.iter().any(|s| s.wal_bytes > 0));
        assert!(stats.iter().all(|s| s.health == ShardHealth::Healthy));
        let expect = index.len();
        drop(index);

        let (back, report) = open_sharded::<u64, u64, FitingTree<u64, u64>>(&cfg).unwrap();
        // Six dirs on disk (4 bulk + 1 split + … minus none deleted),
        // but the drained one recovers empty and is skipped.
        assert!(report.shards.len() >= 5);
        assert!(report.skipped.is_empty());
        assert_eq!(back.len(), expect);
        assert_eq!(back.get(&90001), Some(42));
        assert_eq!(back.get(&500), Some(500));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn checkpoint_shards_honors_wal_threshold() {
        use fiting_index_api::ShardedIndex;
        let root = temp_root("threshold");
        let cfg = config(&root);
        let index: ShardedIndex<u64, u64, Durable> =
            ShardedIndex::bulk_load(&cfg, 2, (0..2000u64).map(|k| (k, k)).collect()).unwrap();
        // Write into only the low shard.
        index.insert(1, 1);
        index.sync_all();
        assert_eq!(index.checkpoint_shards(1), 1);
        assert_eq!(index.checkpoint_shards(1), 0);
        // Threshold 0 checkpoints everything.
        assert_eq!(index.checkpoint_shards(0), 2);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn wal_commit_fault_degrades_and_checkpoint_heals() {
        let root = temp_root("degrade-heal");
        let io = FaultIo::quiet();
        let cfg = fault_config(&root, &io);
        let mut idx: Durable =
            DurableIndex::build_sorted(&cfg, (0..100u64).map(|k| (k, k)).collect()).unwrap();

        idx.try_insert(500, 5).unwrap();
        // Kill the log permanently-for-now: the sync must degrade.
        io.fail_nth(IoOp::Fsync, "wal.000000", 1, InjectKind::Eio, false);
        assert!(idx.try_sync().is_err());
        assert!(idx.is_degraded());
        assert_eq!(idx.health(), ShardHealth::Degraded);
        assert!(idx.degraded_reason().unwrap_or_default().contains("fsync"));

        // Writes refuse fast and typed; reads keep serving.
        assert!(idx.try_insert(501, 5).is_err());
        assert!(idx.try_remove(&0).is_err());
        assert!(idx.try_insert_many(vec![(502, 5)]).is_err());
        assert_eq!(idx.get(&500), Some(&5));
        assert_eq!(idx.get(&50), Some(&50));

        // A clean checkpoint rotates the generation and heals.
        assert!(idx.try_checkpoint().unwrap());
        assert!(!idx.is_degraded());
        assert_eq!(idx.generation(), 1);
        assert_eq!(idx.try_insert(501, 9).unwrap(), None);
        assert!(idx.try_sync().unwrap());

        // The acknowledged pre-degrade write survived in the snapshot.
        let dir = idx.shard_dir().to_path_buf();
        drop(idx);
        let (back, _) = Durable::open_shard(&cfg, &dir).unwrap();
        assert_eq!(back.get(&500), Some(&5));
        assert_eq!(back.get(&501), Some(&9));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    #[should_panic(expected = "shard degraded")]
    fn plain_insert_on_degraded_shard_panics() {
        let root = temp_root("degrade-panic");
        let io = FaultIo::quiet();
        let cfg = fault_config(&root, &io);
        let mut idx: Durable = DurableIndex::build_sorted(&cfg, vec![(1, 1)]).unwrap();
        idx.try_insert(2, 2).unwrap();
        io.fail_nth(IoOp::Write, "wal.000000", 1, InjectKind::Enospc, true);
        let _ = idx.try_sync();
        assert!(idx.is_degraded());
        let _ = std::fs::remove_dir_all(&root);
        idx.insert(3, 3); // panics
    }

    #[test]
    fn checkpoint_failure_leaves_previous_generation_intact() {
        let root = temp_root("ckpt-rollback");
        let io = FaultIo::quiet();
        let cfg = fault_config(&root, &io);
        let mut idx: Durable =
            DurableIndex::build_sorted(&cfg, (0..200u64).map(|k| (k, k)).collect()).unwrap();
        idx.try_insert(900, 9).unwrap();
        idx.try_sync().unwrap();
        let dir = idx.shard_dir().to_path_buf();

        // ENOSPC on the rename step: rotation must roll back.
        io.fail_nth(IoOp::Rename, "snapshot.tmp", 1, InjectKind::Enospc, false);
        assert!(idx.try_checkpoint().is_err());
        assert!(idx.is_degraded());
        assert_eq!(idx.generation(), 0);
        assert!(dir.join("snapshot.000000").exists());
        assert!(dir.join("wal.000000").exists());
        assert!(!dir.join("snapshot.000001").exists());
        assert!(!dir.join("wal.000001").exists());
        assert!(!dir.join("snapshot.tmp").exists());

        // Re-armed: the next checkpoint (fault gone) heals.
        assert!(idx.try_checkpoint().unwrap());
        assert_eq!(idx.generation(), 1);
        assert!(!idx.is_degraded());
        drop(idx);
        let (back, info) = Durable::open_shard(&cfg, &dir).unwrap();
        assert_eq!(info.generation, 1);
        assert_eq!(back.get(&900), Some(&9));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn transient_storms_are_invisible_to_callers() {
        let root = temp_root("transient");
        let io = FaultIo::quiet();
        let cfg = fault_config(&root, &io);
        let mut idx: Durable =
            DurableIndex::build_sorted(&cfg, (0..50u64).map(|k| (k, k)).collect()).unwrap();
        io.fail_nth(IoOp::Write, "wal.000000", 1, InjectKind::Transient, false);
        io.fail_nth(IoOp::Fsync, "wal.000000", 1, InjectKind::Transient, false);
        idx.try_insert(77, 7).unwrap();
        assert!(idx.try_sync().unwrap());
        assert!(!idx.is_degraded());
        assert!(idx.io_retries() >= 2);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn reopen_in_place_rebuilds_from_disk() {
        let root = temp_root("reload");
        let cfg = config(&root);
        let mut idx: Durable =
            DurableIndex::build_sorted(&cfg, (0..300u64).map(|k| (k, k)).collect()).unwrap();
        idx.try_insert(800, 8).unwrap();
        // Not synced: reopen_in_place must flush the buffered record
        // before discarding memory, so the acknowledged write survives.
        let info = idx.reopen_in_place().unwrap();
        assert_eq!(info.replayed, 1);
        assert_eq!(idx.get(&800), Some(&8));
        assert_eq!(idx.len(), 301);
        assert!(SortedIndex::reload(&mut idx));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn open_sharded_skips_unrecoverable_dir_and_reports_it() {
        use fiting_index_api::ShardedIndex;
        let root = temp_root("skip");
        let cfg = config(&root);
        let index: ShardedIndex<u64, u64, Durable> =
            ShardedIndex::bulk_load(&cfg, 2, (0..1000u64).map(|k| (k, k)).collect()).unwrap();
        index.sync_all();
        drop(index);
        // A shard directory minted by a split that died before its
        // first snapshot landed: present but empty.
        std::fs::create_dir_all(root.join("shard-000099")).unwrap();
        let (back, report) = open_sharded::<u64, u64, FitingTree<u64, u64>>(&cfg).unwrap();
        assert_eq!(back.len(), 1000);
        assert_eq!(report.shards.len(), 2);
        assert_eq!(report.skipped.len(), 1);
        assert!(report.skipped[0].dir.ends_with("shard-000099"));
        assert!(matches!(
            report.skipped[0].error,
            OpenError::NoValidSnapshot(_)
        ));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn open_sharded_reconciles_overlapping_spans() {
        use fiting_index_api::ShardedIndex;
        let root = temp_root("overlap");
        let cfg = config(&root);
        let index: ShardedIndex<u64, u64, Durable> =
            ShardedIndex::bulk_load(&cfg, 1, (0..1000u64).map(|k| (k, k)).collect()).unwrap();
        index.sync_all();
        drop(index);
        // Fake the crash window of an interrupted split: a second
        // shard holding a copy of the tail [600, 1000) while the first
        // still holds everything.
        let tail_cfg = config(&root);
        let tail: Durable =
            DurableIndex::build_sorted(&tail_cfg, (600..1000u64).map(|k| (k, k + 1)).collect())
                .unwrap();
        drop(tail);
        let (back, report) = open_sharded::<u64, u64, FitingTree<u64, u64>>(&cfg).unwrap();
        assert_eq!(back.len(), 1000);
        // The tail shard's copy wins; the lower shard dropped its
        // duplicates.
        assert_eq!(back.get(&700), Some(701));
        assert_eq!(back.get(&599), Some(599));
        assert_eq!(
            report
                .shards
                .iter()
                .map(|r| r.overlap_dropped)
                .sum::<usize>(),
            400
        );
        std::fs::remove_dir_all(&root).unwrap();
    }
}
