//! The [`DurableIndex`] wrapper: any snapshot-capable index structure
//! plus a per-shard snapshot + WAL directory on disk.
//!
//! # Shard directory layout
//!
//! Each shard owns one directory under the store root:
//!
//! ```text
//! <root>/shard-000000/
//!   snapshot.000003   latest checkpoint (core snapshot format)
//!   wal.000003        mutations since that checkpoint
//! ```
//!
//! Snapshot and log share a **generation** number; `checkpoint()`
//! writes generation `g+1` via temp-file + atomic rename (+ directory
//! fsync), opens a fresh `wal.(g+1)`, then deletes generation `g` —
//! so at every instant at least one complete (snapshot, log) pair is
//! on disk.
//!
//! # Recovery invariant
//!
//! `open` = decode the newest intact snapshot, replay its log's
//! longest intact record prefix, truncate the torn tail. The recovered
//! state is therefore always *prefix-consistent*: exactly the state
//! after some prefix of the logged mutations, never a torn record,
//! never a partial operation — the property the crash-injection suite
//! verifies against a `BTreeMap` oracle at every record boundary and
//! at random corruption offsets.
//!
//! # Failure policy
//!
//! Mutation-path I/O errors (a WAL append that cannot reach its file,
//! a checkpoint that cannot rename) **panic**: the [`SortedIndex`]
//! vocabulary has no error channel, and a durability layer that
//! silently drops its log would lie about durability. Open/recovery
//! paths return typed errors instead.

use crate::wal::{replay, FsyncPolicy, ReplayOp, Wal, WalOp};
use fiting_index_api::{BuildableIndex, Key, ShardedIndex, SortedIndex};
use fiting_tree::snapshot::{decode_tree, encode_tree, SnapshotError};
use fiting_tree::FitingTree;
use std::fs;
use std::fs::File;
use std::io::Write;
use std::ops::RangeBounds;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An index structure that can serialize itself into (and restore
/// itself from) the core snapshot page format — the bound
/// [`DurableIndex`] places on its inner structure.
pub trait PageSnapshot: Sized {
    /// Serializes the full structure into an owned snapshot image.
    fn snapshot_bytes(&self) -> Vec<u8>;

    /// Restores a structure from a snapshot image.
    ///
    /// # Errors
    ///
    /// Any truncation, checksum mismatch, or inconsistency in `bytes`.
    fn restore_snapshot(bytes: &[u8]) -> Result<Self, SnapshotError>;
}

impl<K: Key, V: Key> PageSnapshot for FitingTree<K, V> {
    fn snapshot_bytes(&self) -> Vec<u8> {
        encode_tree(self)
    }

    fn restore_snapshot(bytes: &[u8]) -> Result<Self, SnapshotError> {
        decode_tree(bytes)
    }
}

/// Shared state of one on-disk store: the root directory, the fsync
/// policy, and the shard-directory allocator.
#[derive(Debug)]
struct Store {
    root: PathBuf,
    fsync: FsyncPolicy,
    next_shard: AtomicU64,
}

impl Store {
    fn mint_shard_dir(&self) -> std::io::Result<PathBuf> {
        // ordering: Relaxed — the counter only mints unique ids; the
        // filesystem create_dir_all publishes the directory.
        let id = self.next_shard.fetch_add(1, Ordering::Relaxed);
        let dir = self.root.join(format!("shard-{id:06}"));
        fs::create_dir_all(&dir)?;
        Ok(dir)
    }
}

/// Build configuration for [`DurableIndex`] shards: where they live,
/// how eagerly they fsync, and how to build the structure they wrap.
///
/// `Clone`s share the same store (same root, same shard-id allocator),
/// which is what lets [`ShardedIndex`] rebalancing build fresh durable
/// shards without colliding directories.
#[derive(Debug, Clone)]
pub struct DurableConfig<C> {
    /// Configuration of the wrapped structure.
    pub inner: C,
    store: Arc<Store>,
}

impl<C> DurableConfig<C> {
    /// Creates (or adopts) the store root at `root`.
    ///
    /// Existing `shard-*` directories are counted so freshly minted
    /// shards never reuse a directory.
    ///
    /// # Errors
    ///
    /// Filesystem errors creating or scanning `root`.
    pub fn new(root: impl Into<PathBuf>, fsync: FsyncPolicy, inner: C) -> std::io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let mut next = 0;
        for entry in fs::read_dir(&root)? {
            if let Some(id) = parse_shard_id(&entry?.file_name().to_string_lossy()) {
                next = next.max(id + 1);
            }
        }
        Ok(DurableConfig {
            inner,
            store: Arc::new(Store {
                root,
                fsync,
                next_shard: AtomicU64::new(next),
            }),
        })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.store.root
    }
}

fn parse_shard_id(name: &str) -> Option<u64> {
    name.strip_prefix("shard-")?.parse().ok()
}

fn gen_file(dir: &Path, prefix: &str, generation: u64) -> PathBuf {
    dir.join(format!("{prefix}.{generation:06}"))
}

/// Best-effort directory fsync (makes a rename durable on Linux;
/// ignored where unsupported).
fn fsync_dir(dir: &Path) {
    let _ = File::open(dir).and_then(|f| f.sync_all());
}

/// Writes `data` as generation `generation`'s snapshot: temp file,
/// data fsync, atomic rename, directory fsync.
fn write_snapshot(dir: &Path, generation: u64, data: &[u8]) -> std::io::Result<()> {
    let tmp = dir.join("snapshot.tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(data)?;
    f.sync_data()?;
    drop(f);
    fs::rename(&tmp, gen_file(dir, "snapshot", generation))?;
    fsync_dir(dir);
    Ok(())
}

/// What recovery found in one shard directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRecovery {
    /// The shard directory that was opened.
    pub dir: PathBuf,
    /// Generation of the snapshot that decoded.
    pub generation: u64,
    /// Size of that snapshot on disk.
    pub snapshot_bytes: usize,
    /// Intact WAL records replayed on top of the snapshot.
    pub replayed: usize,
    /// Whether a torn/corrupt WAL tail (or a damaged WAL header) was
    /// discarded.
    pub wal_truncated: bool,
}

/// Why a shard (or store) failed to open.
#[derive(Debug)]
pub enum OpenError {
    /// Filesystem failure scanning or reading the store.
    Io(std::io::Error),
    /// The shard directory holds no snapshot that decodes.
    NoValidSnapshot(PathBuf),
    /// The store root holds no shard directories at all.
    NoShards(PathBuf),
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpenError::Io(e) => write!(f, "store I/O failure: {e}"),
            OpenError::NoValidSnapshot(dir) => {
                write!(f, "no intact snapshot in {}", dir.display())
            }
            OpenError::NoShards(root) => {
                write!(f, "no shard directories under {}", root.display())
            }
        }
    }
}

impl std::error::Error for OpenError {}

impl From<std::io::Error> for OpenError {
    fn from(e: std::io::Error) -> Self {
        OpenError::Io(e)
    }
}

/// Build failure of a durable shard: either the wrapped structure
/// refused its input, or its storage could not be created.
#[derive(Debug)]
pub enum StorageBuildError<E> {
    /// The wrapped structure's own build error.
    Build(E),
    /// Creating the shard directory, snapshot, or log failed.
    Io(std::io::Error),
}

/// A [`SortedIndex`] wrapper adding a per-shard snapshot + write-ahead
/// log. See the module docs for the layout, the recovery invariant,
/// and the mutation-path panic policy.
///
/// Mutations are logged (buffered) *before* they are applied; the
/// buffer reaches the OS — and, policy permitting, stable storage — at
/// each [`sync`](SortedIndex::sync) group-commit point.
/// [`split_off_tail`](SortedIndex::split_off_tail) and
/// [`absorb_tail`](SortedIndex::absorb_tail) checkpoint the involved
/// shards, so rebalancing rotates per-shard logs instead of leaving a
/// log that disagrees with its shard's key span.
#[derive(Debug)]
pub struct DurableIndex<K: Key, V: Key, I = FitingTree<K, V>> {
    inner: I,
    store: Arc<Store>,
    dir: PathBuf,
    generation: u64,
    wal: Wal<K, V>,
    disk_bytes: usize,
}

impl<K: Key, V: Key, I: SortedIndex<K, V> + PageSnapshot> DurableIndex<K, V, I> {
    /// Wraps `inner`, minting a fresh shard directory with an initial
    /// snapshot (generation 0) and an empty log.
    fn create(inner: I, store: Arc<Store>) -> std::io::Result<Self> {
        let dir = store.mint_shard_dir()?;
        let data = inner.snapshot_bytes();
        write_snapshot(&dir, 0, &data)?;
        let wal = Wal::create(&gen_file(&dir, "wal", 0), store.fsync)?;
        Ok(DurableIndex {
            inner,
            store,
            dir,
            generation: 0,
            wal,
            disk_bytes: data.len(),
        })
    }

    /// Opens one shard directory: newest intact snapshot + WAL replay
    /// + tail truncation (the module-level recovery invariant).
    ///
    /// # Errors
    ///
    /// [`OpenError::NoValidSnapshot`] when nothing in `dir` decodes;
    /// [`OpenError::Io`] for filesystem failures.
    pub fn open_shard<C>(
        config: &DurableConfig<C>,
        dir: &Path,
    ) -> Result<(Self, ShardRecovery), OpenError> {
        // Newest first: a fresher intact snapshot always wins.
        let mut generations: Vec<u64> = fs::read_dir(dir)?
            .filter_map(|e| {
                let name = e.ok()?.file_name();
                let name = name.to_string_lossy();
                name.strip_prefix("snapshot.")?.parse().ok()
            })
            .collect();
        generations.sort_unstable_by(|a, b| b.cmp(a));

        for generation in generations {
            let snap_path = gen_file(dir, "snapshot", generation);
            let Ok(data) = fs::read(&snap_path) else {
                continue;
            };
            let Ok(mut inner) = I::restore_snapshot(&data) else {
                continue;
            };

            // Replay this generation's log on top. A missing log means
            // the crash hit between snapshot rename and log creation —
            // recreate it empty; a log with a damaged header is
            // discarded the same way (snapshot-only recovery).
            let wal_path = gen_file(dir, "wal", generation);
            let (wal, replayed, truncated) = match replay::<K, V>(&wal_path) {
                Ok(rep) => {
                    let n = rep.ops.len();
                    for op in rep.ops {
                        match op {
                            ReplayOp::Insert(k, v) => {
                                inner.insert(k, v);
                            }
                            ReplayOp::Remove(k) => {
                                inner.remove(&k);
                            }
                            ReplayOp::InsertMany(batch) => {
                                inner.insert_many(batch);
                            }
                        }
                    }
                    (
                        Wal::open_append(&wal_path, config.store.fsync, rep.valid_len)?,
                        n,
                        rep.truncated,
                    )
                }
                Err(_) => {
                    // Record whether a (damaged) log was thrown away
                    // *before* creating its empty replacement.
                    let discarded = wal_path.exists();
                    (Wal::create(&wal_path, config.store.fsync)?, 0, discarded)
                }
            };

            let recovery = ShardRecovery {
                dir: dir.to_path_buf(),
                generation,
                snapshot_bytes: data.len(),
                replayed,
                wal_truncated: truncated,
            };
            return Ok((
                DurableIndex {
                    inner,
                    store: Arc::clone(&config.store),
                    dir: dir.to_path_buf(),
                    generation,
                    wal,
                    disk_bytes: data.len(),
                },
                recovery,
            ));
        }
        Err(OpenError::NoValidSnapshot(dir.to_path_buf()))
    }

    /// Writes a fresh snapshot (generation `g+1`), opens a fresh log,
    /// and deletes generation `g`.
    fn checkpoint_now(&mut self) -> std::io::Result<()> {
        let next = self.generation + 1;
        let data = self.inner.snapshot_bytes();
        write_snapshot(&self.dir, next, &data)?;
        let wal = Wal::create(&gen_file(&self.dir, "wal", next), self.store.fsync)?;
        // The old generation is garbage the moment the new pair is
        // durable; deletion failure only wastes space.
        let _ = fs::remove_file(gen_file(&self.dir, "snapshot", self.generation));
        let _ = fs::remove_file(gen_file(&self.dir, "wal", self.generation));
        self.generation = next;
        self.wal = wal;
        self.disk_bytes = data.len();
        Ok(())
    }

    /// The wrapped structure.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// Smallest key currently held (`None` when empty) — what
    /// [`open_sharded`] derives the routing boundaries from.
    #[must_use]
    pub fn min_key(&self) -> Option<K> {
        let all: (std::ops::Bound<K>, std::ops::Bound<K>) =
            (std::ops::Bound::Unbounded, std::ops::Bound::Unbounded);
        self.inner.range(all).next().map(|(k, _)| k)
    }

    /// This shard's on-disk directory.
    #[must_use]
    pub fn shard_dir(&self) -> &Path {
        &self.dir
    }

    /// Current snapshot/log generation (increments per checkpoint).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn log(&mut self, op: &WalOp<'_, K, V>) {
        self.wal
            .append(op)
            .expect("WAL append failed; cannot guarantee durability");
    }
}

/// What [`open_sharded`] recovers: the rebuilt sharded index plus one
/// [`ShardRecovery`] report per opened shard.
pub type RecoveredStore<K, V, I> = (
    ShardedIndex<K, V, DurableIndex<K, V, I>>,
    Vec<ShardRecovery>,
);

/// Opens every shard of a store root as one [`ShardedIndex`] — the
/// service-level recovery path.
///
/// Shards are ordered by their smallest key and the routing boundaries
/// re-derived from those minimums (shard spans are disjoint by
/// construction, so the shard's own smallest key is a valid lower
/// bound). Shards that recover empty are skipped — a merge drained
/// them before the crash — unless *every* shard is empty, in which
/// case one empty shard is kept so the index stays usable.
///
/// # Errors
///
/// [`OpenError::NoShards`] when the root holds no shard directories;
/// any per-shard open failure propagates (a shard that cannot recover
/// is surfaced, not silently dropped).
pub fn open_sharded<K, V, I>(
    config: &DurableConfig<I::Config>,
) -> Result<RecoveredStore<K, V, I>, OpenError>
where
    K: Key,
    V: Key,
    I: BuildableIndex<K, V> + PageSnapshot,
{
    let root = config.root();
    let mut shard_dirs: Vec<(u64, PathBuf)> = fs::read_dir(root)?
        .filter_map(|e| {
            let e = e.ok()?;
            let id = parse_shard_id(&e.file_name().to_string_lossy())?;
            Some((id, e.path()))
        })
        .collect();
    if shard_dirs.is_empty() {
        return Err(OpenError::NoShards(root.to_path_buf()));
    }
    shard_dirs.sort_unstable_by_key(|&(id, _)| id);

    let mut recoveries = Vec::with_capacity(shard_dirs.len());
    let mut opened: Vec<(Option<K>, DurableIndex<K, V, I>)> = Vec::with_capacity(shard_dirs.len());
    for (_, dir) in shard_dirs {
        let (shard, recovery) = DurableIndex::open_shard(config, &dir)?;
        recoveries.push(recovery);
        let min = shard.min_key();
        opened.push((min, shard));
    }

    // Drop drained shards (merge leftovers), keeping one if all are
    // empty; order survivors by key span.
    let any_nonempty = opened.iter().any(|(min, _)| min.is_some());
    let mut survivors: Vec<(Option<K>, DurableIndex<K, V, I>)> = if any_nonempty {
        opened
            .into_iter()
            .filter(|(min, _)| min.is_some())
            .collect()
    } else {
        opened.truncate(1);
        opened
    };
    survivors.sort_by_key(|(min, _)| *min);
    let bounds: Vec<K> = survivors
        .iter()
        .skip(1)
        .map(|(min, _)| min.expect("empty shards were filtered out"))
        .collect();
    let shards: Vec<DurableIndex<K, V, I>> =
        survivors.into_iter().map(|(_, shard)| shard).collect();
    Ok((ShardedIndex::from_shards(bounds, shards), recoveries))
}

impl<K: Key, V: Key, I: SortedIndex<K, V> + PageSnapshot> SortedIndex<K, V>
    for DurableIndex<K, V, I>
{
    type RangeIter<'a>
        = I::RangeIter<'a>
    where
        Self: 'a,
        K: 'a,
        V: 'a;

    fn name(&self) -> &'static str {
        "Durable"
    }

    fn get(&self, key: &K) -> Option<&V> {
        self.inner.get(key)
    }

    fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.log(&WalOp::Insert(key, value));
        self.inner.insert(key, value)
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        self.log(&WalOp::Remove(*key));
        self.inner.remove(key)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }

    fn range<R: RangeBounds<K>>(&self, range: R) -> Self::RangeIter<'_> {
        self.inner.range(range)
    }

    fn insert_many(&mut self, batch: Vec<(K, V)>) -> usize {
        self.log(&WalOp::InsertMany(&batch));
        self.inner.insert_many(batch)
    }

    fn split_off_tail(&mut self, at: &K) -> Option<Self> {
        let right_inner = self.inner.split_off_tail(at)?;
        // Both sides restart from clean snapshots: this shard's log no
        // longer describes the keys that moved out.
        self.checkpoint_now()
            .expect("checkpoint after split failed");
        let right = DurableIndex::create(right_inner, Arc::clone(&self.store))
            .expect("creating storage for the split-off shard failed");
        Some(right)
    }

    fn absorb_tail(&mut self, other: &mut Self) -> bool {
        if !self.inner.absorb_tail(&mut other.inner) {
            return false;
        }
        self.checkpoint_now()
            .expect("checkpoint after absorb failed");
        other
            .checkpoint_now()
            .expect("checkpoint of the drained shard failed");
        true
    }

    fn disk_bytes(&self) -> usize {
        self.disk_bytes
    }

    fn wal_bytes(&self) -> usize {
        self.wal.bytes() as usize
    }

    fn sync(&mut self) -> bool {
        self.wal
            .commit()
            .expect("WAL commit failed; cannot guarantee durability");
        true
    }

    fn checkpoint(&mut self) -> bool {
        self.checkpoint_now().expect("checkpoint failed");
        true
    }
}

impl<K: Key, V: Key, I: BuildableIndex<K, V> + PageSnapshot> BuildableIndex<K, V>
    for DurableIndex<K, V, I>
{
    type Config = DurableConfig<I::Config>;
    type BuildError = StorageBuildError<I::BuildError>;

    fn build_sorted(config: &Self::Config, sorted: Vec<(K, V)>) -> Result<Self, Self::BuildError> {
        let inner = I::build_sorted(&config.inner, sorted).map_err(StorageBuildError::Build)?;
        DurableIndex::create(inner, Arc::clone(&config.store)).map_err(StorageBuildError::Io)
    }
}
