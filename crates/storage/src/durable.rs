//! The [`DurableIndex`] wrapper: any snapshot-capable index structure
//! plus a per-shard snapshot + WAL directory on disk.
//!
//! # Shard directory layout
//!
//! Each shard owns one directory under the store root:
//!
//! ```text
//! <root>/shard-000000/
//!   snapshot.000003   latest checkpoint (core snapshot format)
//!   wal.000003        mutations since that checkpoint
//! ```
//!
//! Snapshot and log share a **generation** number; a checkpoint writes
//! generation `g+1` as temp snapshot → fresh `wal.(g+1)` → atomic
//! rename → directory fsync (the commit point), then deletes
//! generation `g` — so at every instant at least one complete
//! (snapshot, log) pair is on disk, and a failure at *any* rotation
//! step rolls back to generation `g` intact (the ENOSPC-per-step
//! battery in `tests/chaos.rs` proves each step).
//!
//! # Recovery invariant
//!
//! `open` = decode the newest intact snapshot, replay its log's
//! longest intact record prefix, truncate the torn tail. The recovered
//! state is therefore always *prefix-consistent*: exactly the state
//! after some prefix of the logged mutations, never a torn record,
//! never a partial operation — the property the crash-injection suite
//! verifies against a `BTreeMap` oracle at every record boundary and
//! at random corruption offsets. [`open_sharded`] additionally
//! reconciles *overlapping* shard spans (the crash window between the
//! two checkpoints of a split or merge duplicates — never loses — the
//! moved run) by dropping the duplicated tail from the lower shard.
//!
//! # Failure policy
//!
//! All I/O goes through the store's [`StorageIo`] and surfaces as
//! classified [`StorageError`]s; transient faults are absorbed by the
//! store's [`RetryPolicy`]. A *permanent* WAL-commit or checkpoint
//! failure flips the shard into **degraded read-only mode**: reads
//! (which never touch the disk) keep serving, further writes fail fast
//! with a typed [`Degraded`] error through the `try_*` mutation
//! vocabulary, and the fault that tripped the shard is retained in
//! [`degraded_reason`](DurableIndex::degraded_reason). The mode is
//! re-armed, not terminal — a later successful
//! [`try_checkpoint`](SortedIndex::try_checkpoint) (disk freed,
//! transient storm over) rotates to a clean generation and heals the
//! shard. The panic-free `try_*` methods are the service path; the
//! plain [`SortedIndex`] mutators (which have no error channel) panic
//! only if invoked on an already-degraded shard.

use crate::error::{IoOp, RetryPolicy, StorageError};
use crate::io::{RealIo, StorageIo};
use crate::wal::{replay, FsyncPolicy, ReplayOp, Wal, WalOp};
use fiting_index_api::{BuildableIndex, Degraded, Key, ShardHealth, ShardedIndex, SortedIndex};
use fiting_tree::snapshot::{decode_tree, encode_tree, SnapshotError};
use fiting_tree::FitingTree;
use std::ops::{Bound, RangeBounds};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An index structure that can serialize itself into (and restore
/// itself from) the core snapshot page format — the bound
/// [`DurableIndex`] places on its inner structure.
pub trait PageSnapshot: Sized {
    /// Serializes the full structure into an owned snapshot image.
    fn snapshot_bytes(&self) -> Vec<u8>;

    /// Restores a structure from a snapshot image.
    ///
    /// # Errors
    ///
    /// Any truncation, checksum mismatch, or inconsistency in `bytes`.
    fn restore_snapshot(bytes: &[u8]) -> Result<Self, SnapshotError>;
}

impl<K: Key, V: Key> PageSnapshot for FitingTree<K, V> {
    fn snapshot_bytes(&self) -> Vec<u8> {
        encode_tree(self)
    }

    fn restore_snapshot(bytes: &[u8]) -> Result<Self, SnapshotError> {
        decode_tree(bytes)
    }
}

/// Shared state of one on-disk store: the root directory, the fsync
/// policy, the I/O implementation, the retry policy, and the
/// shard-directory allocator.
#[derive(Debug)]
struct Store {
    root: PathBuf,
    fsync: FsyncPolicy,
    io: Arc<dyn StorageIo>,
    retry: Arc<RetryPolicy>,
    next_shard: AtomicU64,
}

impl Store {
    /// Runs one I/O call with retry-on-transient and classification.
    fn run<T>(
        &self,
        retries: &AtomicU64,
        op: IoOp,
        path: &Path,
        mut f: impl FnMut(&dyn StorageIo) -> std::io::Result<T>,
    ) -> Result<T, StorageError> {
        self.retry.run(retries, || {
            f(self.io.as_ref()).map_err(|e| StorageError::new(op, path, e))
        })
    }

    fn mint_shard_dir(&self, retries: &AtomicU64) -> Result<PathBuf, StorageError> {
        // ordering: Relaxed — the counter only mints unique ids; the
        // filesystem create_dir_all publishes the directory.
        let id = self.next_shard.fetch_add(1, Ordering::Relaxed);
        let dir = self.root.join(format!("shard-{id:06}"));
        self.run(retries, IoOp::CreateDir, &dir, |io| io.create_dir_all(&dir))?;
        Ok(dir)
    }
}

/// Build configuration for [`DurableIndex`] shards: where they live,
/// how eagerly they fsync, which [`StorageIo`] they speak through, and
/// how to build the structure they wrap.
///
/// `Clone`s share the same store (same root, same shard-id allocator),
/// which is what lets [`ShardedIndex`] rebalancing build fresh durable
/// shards without colliding directories.
#[derive(Debug, Clone)]
pub struct DurableConfig<C> {
    /// Configuration of the wrapped structure.
    pub inner: C,
    store: Arc<Store>,
}

impl<C> DurableConfig<C> {
    /// Creates (or adopts) the store root at `root` on the real
    /// filesystem with the default [`RetryPolicy`].
    ///
    /// Existing `shard-*` directories are counted so freshly minted
    /// shards never reuse a directory.
    ///
    /// # Errors
    ///
    /// Filesystem errors creating or scanning `root`.
    pub fn new(root: impl Into<PathBuf>, fsync: FsyncPolicy, inner: C) -> std::io::Result<Self> {
        DurableConfig::with_io(root, fsync, inner, Arc::new(RealIo), RetryPolicy::default())
            .map_err(StorageError::into_io)
    }

    /// Creates (or adopts) the store root at `root`, speaking through
    /// `io` (e.g. a [`FaultIo`](crate::FaultIo) harness) and absorbing
    /// transient faults per `retry`.
    ///
    /// # Errors
    ///
    /// Classified failures creating or scanning `root`.
    pub fn with_io(
        root: impl Into<PathBuf>,
        fsync: FsyncPolicy,
        inner: C,
        io: Arc<dyn StorageIo>,
        retry: RetryPolicy,
    ) -> Result<Self, StorageError> {
        let root = root.into();
        let retry = Arc::new(retry);
        let scan_retries = AtomicU64::new(0);
        retry.run(&scan_retries, || {
            io.create_dir_all(&root)
                .map_err(|e| StorageError::new(IoOp::CreateDir, &root, e))
        })?;
        let names = retry.run(&scan_retries, || {
            io.read_dir_names(&root)
                .map_err(|e| StorageError::new(IoOp::ReadDir, &root, e))
        })?;
        let mut next = 0;
        for name in names {
            if let Some(id) = parse_shard_id(&name) {
                next = next.max(id + 1);
            }
        }
        Ok(DurableConfig {
            inner,
            store: Arc::new(Store {
                root,
                fsync,
                io,
                retry,
                next_shard: AtomicU64::new(next),
            }),
        })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.store.root
    }
}

impl StorageError {
    /// Unwraps back to the underlying [`std::io::Error`] (for callers
    /// on the plain-`io` API surface).
    #[must_use]
    pub fn into_io(self) -> std::io::Error {
        std::io::Error::new(self.kind(), self.to_string())
    }
}

fn parse_shard_id(name: &str) -> Option<u64> {
    name.strip_prefix("shard-")?.parse().ok()
}

fn gen_file(dir: &Path, prefix: &str, generation: u64) -> PathBuf {
    dir.join(format!("{prefix}.{generation:06}"))
}

/// Writes `data` to `path` durably: create, write through (tolerating
/// short writes), fdatasync. Used for the temp snapshot.
fn write_file_durable(
    store: &Store,
    retries: &AtomicU64,
    path: &Path,
    data: &[u8],
) -> Result<(), StorageError> {
    let mut f = store.run(retries, IoOp::Create, path, |io| io.create(path))?;
    let mut done = 0;
    while done < data.len() {
        let n = store.retry.run(retries, || {
            f.write(&data[done..])
                .map_err(|e| StorageError::new(IoOp::Write, path, e))
        })?;
        done += n;
    }
    store.retry.run(retries, || {
        f.sync_data()
            .map_err(|e| StorageError::new(IoOp::Fsync, path, e))
    })
}

/// Writes `data` as generation `generation`'s snapshot: temp file,
/// data fsync, atomic rename, directory fsync (the commit point). On
/// failure the temp file is cleaned up best-effort and nothing of the
/// new generation is visible.
fn write_snapshot(
    store: &Store,
    retries: &AtomicU64,
    dir: &Path,
    generation: u64,
    data: &[u8],
) -> Result<(), StorageError> {
    let tmp = dir.join("snapshot.tmp");
    let publish = (|| {
        write_file_durable(store, retries, &tmp, data)?;
        let target = gen_file(dir, "snapshot", generation);
        store.run(retries, IoOp::Rename, &tmp, |io| io.rename(&tmp, &target))?;
        store.run(retries, IoOp::SyncDir, dir, |io| io.sync_dir(dir))
    })();
    if publish.is_err() {
        let _ = store.io.remove_file(&tmp);
    }
    publish
}

/// What recovery found in one shard directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRecovery {
    /// The shard directory that was opened.
    pub dir: PathBuf,
    /// Generation of the snapshot that decoded.
    pub generation: u64,
    /// Size of that snapshot on disk.
    pub snapshot_bytes: usize,
    /// Intact WAL records replayed on top of the snapshot.
    pub replayed: usize,
    /// Whether a torn/corrupt WAL tail (or a damaged WAL header) was
    /// discarded.
    pub wal_truncated: bool,
    /// Keys dropped by [`open_sharded`]'s overlap reconciliation — a
    /// crash between the two checkpoints of a split/merge duplicates
    /// the moved run across two shards; the copy in the lower shard is
    /// discarded at reopen.
    pub overlap_dropped: usize,
}

/// Why a shard (or store) failed to open.
#[derive(Debug)]
pub enum OpenError {
    /// Classified I/O failure scanning or reading the store.
    Io(StorageError),
    /// The shard directory holds no snapshot that decodes.
    NoValidSnapshot(PathBuf),
    /// The store root holds no shard directories at all.
    NoShards(PathBuf),
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpenError::Io(e) => write!(f, "store I/O failure: {e}"),
            OpenError::NoValidSnapshot(dir) => {
                write!(f, "no intact snapshot in {}", dir.display())
            }
            OpenError::NoShards(root) => {
                write!(f, "no shard directories under {}", root.display())
            }
        }
    }
}

impl std::error::Error for OpenError {}

impl From<StorageError> for OpenError {
    fn from(e: StorageError) -> Self {
        OpenError::Io(e)
    }
}

/// Build failure of a durable shard: either the wrapped structure
/// refused its input, or its storage could not be created.
#[derive(Debug)]
pub enum StorageBuildError<E> {
    /// The wrapped structure's own build error.
    Build(E),
    /// Creating the shard directory, snapshot, or log failed.
    Io(StorageError),
}

/// A [`SortedIndex`] wrapper adding a per-shard snapshot + write-ahead
/// log. See the module docs for the layout, the recovery invariant,
/// and the degraded-mode failure policy.
///
/// Mutations are logged (buffered) *before* they are applied; the
/// buffer reaches the OS — and, policy permitting, stable storage — at
/// each [`sync`](SortedIndex::sync) group-commit point.
/// [`split_off_tail`](SortedIndex::split_off_tail) and
/// [`absorb_tail`](SortedIndex::absorb_tail) checkpoint the involved
/// shards, so rebalancing rotates per-shard logs instead of leaving a
/// log that disagrees with its shard's key span.
#[derive(Debug)]
pub struct DurableIndex<K: Key, V: Key, I = FitingTree<K, V>> {
    inner: I,
    store: Arc<Store>,
    dir: PathBuf,
    generation: u64,
    wal: Wal<K, V>,
    disk_bytes: usize,
    /// `Some(reason)` once a permanent WAL/checkpoint fault flipped
    /// the shard read-only; cleared by a successful checkpoint.
    degraded: Option<String>,
    /// Transient faults absorbed by retry on this shard's behalf.
    retries: Arc<AtomicU64>,
}

impl<K: Key, V: Key, I: SortedIndex<K, V> + PageSnapshot> DurableIndex<K, V, I> {
    /// Wraps `inner`, minting a fresh shard directory with an initial
    /// snapshot (generation 0) and an empty log. On failure `inner` is
    /// handed back so the caller can undo an in-memory move.
    fn create(inner: I, store: Arc<Store>) -> Result<Self, (StorageError, I)> {
        let retries = Arc::new(AtomicU64::new(0));
        let prep = (|| {
            let dir = store.mint_shard_dir(&retries)?;
            let data = inner.snapshot_bytes();
            write_snapshot(&store, &retries, &dir, 0, &data)?;
            let wal = Wal::create(
                store.io.as_ref(),
                &gen_file(&dir, "wal", 0),
                store.fsync,
                Arc::clone(&store.retry),
                Arc::clone(&retries),
            )?;
            Ok((dir, data.len(), wal))
        })();
        let (dir, disk_bytes, wal) = match prep {
            Ok(parts) => parts,
            Err(e) => return Err((e, inner)),
        };
        Ok(DurableIndex {
            inner,
            store,
            dir,
            generation: 0,
            wal,
            disk_bytes,
            degraded: None,
            retries,
        })
    }

    /// Opens one shard directory: newest intact snapshot + WAL replay
    /// + tail truncation (the module-level recovery invariant).
    ///
    /// # Errors
    ///
    /// [`OpenError::NoValidSnapshot`] when nothing in `dir` decodes;
    /// [`OpenError::Io`] for filesystem failures.
    pub fn open_shard<C>(
        config: &DurableConfig<C>,
        dir: &Path,
    ) -> Result<(Self, ShardRecovery), OpenError> {
        Self::open_shard_in(&config.store, dir)
    }

    fn open_shard_in(store: &Arc<Store>, dir: &Path) -> Result<(Self, ShardRecovery), OpenError> {
        let retries = Arc::new(AtomicU64::new(0));
        // Newest first: a fresher intact snapshot always wins.
        let names = store.run(&retries, IoOp::ReadDir, dir, |io| io.read_dir_names(dir))?;
        let mut generations: Vec<u64> = names
            .iter()
            .filter_map(|name| name.strip_prefix("snapshot.")?.parse().ok())
            .collect();
        generations.sort_unstable_by(|a, b| b.cmp(a));

        for generation in generations {
            let snap_path = gen_file(dir, "snapshot", generation);
            // An *undecodable* (bitrotted) or vanished snapshot falls
            // back to the next-older generation; a real read failure
            // propagates — skipping past a readable-but-erroring
            // newest generation would silently resurrect stale state,
            // losing every write acknowledged since (the log that
            // held them was GC'd when this generation was published).
            let data = match store.run(&retries, IoOp::Read, &snap_path, |io| io.read(&snap_path)) {
                Ok(data) => data,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(OpenError::Io(e)),
            };
            let Ok(mut inner) = I::restore_snapshot(&data) else {
                continue;
            };

            // Replay this generation's log on top. A missing log means
            // the crash hit between log creation and snapshot rename —
            // recreate it empty; a log with a damaged header is
            // discarded the same way (snapshot-only recovery). Real
            // read failures propagate: discarding a *readable* log
            // would silently drop acknowledged writes.
            let wal_path = gen_file(dir, "wal", generation);
            let (wal, replayed, truncated) = match replay::<K, V>(store.io.as_ref(), &wal_path) {
                Ok(rep) => {
                    let n = rep.ops.len();
                    for op in rep.ops {
                        match op {
                            ReplayOp::Insert(k, v) => {
                                inner.insert(k, v);
                            }
                            ReplayOp::Remove(k) => {
                                inner.remove(&k);
                            }
                            ReplayOp::InsertMany(batch) => {
                                inner.insert_many(batch);
                            }
                        }
                    }
                    (
                        Wal::open_append(
                            store.io.as_ref(),
                            &wal_path,
                            store.fsync,
                            rep.valid_len,
                            Arc::clone(&store.retry),
                            Arc::clone(&retries),
                        )?,
                        n,
                        rep.truncated,
                    )
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::NotFound | std::io::ErrorKind::InvalidData
                    ) =>
                {
                    let discarded = e.kind() == std::io::ErrorKind::InvalidData;
                    (
                        Wal::create(
                            store.io.as_ref(),
                            &wal_path,
                            store.fsync,
                            Arc::clone(&store.retry),
                            Arc::clone(&retries),
                        )?,
                        0,
                        discarded,
                    )
                }
                Err(e) => return Err(OpenError::Io(e)),
            };

            let recovery = ShardRecovery {
                dir: dir.to_path_buf(),
                generation,
                snapshot_bytes: data.len(),
                replayed,
                wal_truncated: truncated,
                overlap_dropped: 0,
            };
            return Ok((
                DurableIndex {
                    inner,
                    store: Arc::clone(store),
                    dir: dir.to_path_buf(),
                    generation,
                    wal,
                    disk_bytes: data.len(),
                    degraded: None,
                    retries,
                },
                recovery,
            ));
        }
        Err(OpenError::NoValidSnapshot(dir.to_path_buf()))
    }

    /// Rotates to generation `g+1`: temp snapshot → fresh log → atomic
    /// rename → directory fsync (the commit point) → old generation
    /// deleted. Any failure rolls the new generation back and leaves
    /// generation `g` fully intact and still active.
    ///
    /// The fresh `wal.(g+1)` is created *before* the rename publishes
    /// `snapshot.(g+1)`: a crash between the two leaves an orphan
    /// (empty) log next to the still-authoritative generation `g`,
    /// which recovery ignores. The reverse order could publish a
    /// snapshot without its log — recovery would prefer it and every
    /// op acknowledged into `wal.g` after this point would be lost.
    fn checkpoint_now(&mut self) -> Result<(), StorageError> {
        let next = self.generation + 1;
        let data = self.inner.snapshot_bytes();
        let tmp = self.dir.join("snapshot.tmp");
        let snap_next = gen_file(&self.dir, "snapshot", next);
        let wal_next = gen_file(&self.dir, "wal", next);
        let store = Arc::clone(&self.store);
        let retries = Arc::clone(&self.retries);

        if let Err(e) = write_file_durable(&store, &retries, &tmp, &data) {
            let _ = store.io.remove_file(&tmp);
            return Err(e);
        }
        let wal = match Wal::create(
            store.io.as_ref(),
            &wal_next,
            store.fsync,
            Arc::clone(&store.retry),
            Arc::clone(&retries),
        ) {
            Ok(w) => w,
            Err(e) => {
                let _ = store.io.remove_file(&tmp);
                let _ = store.io.remove_file(&wal_next);
                return Err(e);
            }
        };
        if let Err(e) = store.run(&retries, IoOp::Rename, &tmp, |io| {
            io.rename(&tmp, &snap_next)
        }) {
            let _ = store.io.remove_file(&tmp);
            let _ = store.io.remove_file(&wal_next);
            return Err(e);
        }
        if let Err(e) = store.run(&retries, IoOp::SyncDir, &self.dir, |io| {
            io.sync_dir(&self.dir)
        }) {
            // Un-publish. Should even the rollback fail, the caller
            // flips this shard degraded: no further appends reach
            // `wal.g`, so generations `g` and `g+1` hold identical
            // states and recovery stays exact either way.
            let _ = store.io.remove_file(&snap_next);
            let _ = store.io.remove_file(&wal_next);
            return Err(e);
        }
        // The old generation is garbage the moment the new pair is
        // durable; deletion failure only wastes space (recovery always
        // prefers the newest intact pair).
        let _ = store
            .io
            .remove_file(&gen_file(&self.dir, "snapshot", self.generation));
        let _ = store
            .io
            .remove_file(&gen_file(&self.dir, "wal", self.generation));
        self.generation = next;
        self.wal = wal;
        self.disk_bytes = data.len();
        Ok(())
    }

    /// The wrapped structure.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// Smallest key currently held (`None` when empty) — what
    /// [`open_sharded`] derives the routing boundaries from.
    #[must_use]
    pub fn min_key(&self) -> Option<K> {
        let all: (Bound<K>, Bound<K>) = (Bound::Unbounded, Bound::Unbounded);
        self.inner.range(all).next().map(|(k, _)| k)
    }

    /// This shard's on-disk directory.
    #[must_use]
    pub fn shard_dir(&self) -> &Path {
        &self.dir
    }

    /// Current snapshot/log generation (increments per checkpoint).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether a permanent fault has flipped this shard read-only.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }

    /// The fault that degraded this shard, if any.
    #[must_use]
    pub fn degraded_reason(&self) -> Option<&str> {
        self.degraded.as_deref()
    }

    fn degrade(&mut self, e: &StorageError) {
        if self.degraded.is_none() {
            self.degraded = Some(e.to_string());
        }
    }

    /// Rebuilds this shard in place from its own directory: flush
    /// whatever the log still buffers (best-effort), reopen snapshot +
    /// WAL exactly like a process restart would, then **re-apply and
    /// re-log any records the flush could not land** — the
    /// acknowledged-but-unsynced writes a panicking worker left
    /// behind. The in-memory structure is discarded, which is the
    /// point: after a panic mid-batch it may be arbitrarily
    /// inconsistent, while disk + carried suffix reconstruct exactly
    /// the acknowledged state, so a lane resurrection loses nothing
    /// even while the disk is refusing writes.
    ///
    /// (Re-applying a record the failed flush *did* partially land is
    /// harmless: every WAL op is a last-write-wins state setter, so
    /// replaying a contiguous record suffix twice is idempotent.)
    ///
    /// # Errors
    ///
    /// Everything [`open_shard`](Self::open_shard) can report; the
    /// existing in-memory state — buffered records included — is left
    /// untouched on failure.
    pub fn reopen_in_place(&mut self) -> Result<ShardRecovery, OpenError> {
        let _ = self.wal.commit();
        let (mut fresh, recovery) = Self::open_shard_in(&self.store, &self.dir.clone())?;
        for op in crate::wal::decode_records::<K, V>(&self.wal.take_buffer()) {
            match op {
                ReplayOp::Insert(k, v) => {
                    fresh.wal.append(&WalOp::Insert(k, v));
                    fresh.inner.insert(k, v);
                }
                ReplayOp::Remove(k) => {
                    fresh.wal.append(&WalOp::Remove(k));
                    fresh.inner.remove(&k);
                }
                ReplayOp::InsertMany(batch) => {
                    fresh.wal.append(&WalOp::InsertMany(&batch));
                    fresh.inner.insert_many(batch);
                }
            }
        }
        // Push the carried suffix toward the disk right away; if this
        // fails too it simply stays buffered in the fresh handle.
        let _ = fresh.wal.commit();
        *self = fresh;
        Ok(recovery)
    }

    /// Drops every key `>= at` from this shard (memory + logged
    /// removes), returning how many were dropped — [`open_sharded`]'s
    /// overlap reconciliation.
    fn reconcile_drop_tail(&mut self, at: &K) -> usize {
        let doomed: Vec<K> = self
            .inner
            .range((Bound::Included(*at), Bound::Unbounded))
            .map(|(k, _)| k)
            .collect();
        for k in &doomed {
            self.wal.append(&WalOp::Remove(*k));
            self.inner.remove(k);
        }
        // Best-effort persistence: replaying without this commit just
        // re-runs the same deterministic reconciliation next open.
        let _ = self.wal.commit();
        doomed.len()
    }
}

/// A shard directory [`open_sharded`] could not recover, with the
/// reason — reported per shard instead of failing the whole reopen
/// (the crash window between a split/merge's two checkpoints can leave
/// a freshly minted directory with no intact snapshot yet).
#[derive(Debug)]
pub struct SkippedShard {
    /// The directory that did not recover.
    pub dir: PathBuf,
    /// Why it did not recover.
    pub error: OpenError,
}

/// Everything [`open_sharded`] has to report: one [`ShardRecovery`]
/// per recovered shard (in directory order) and one [`SkippedShard`]
/// per directory that held no recoverable state.
#[derive(Debug, Default)]
pub struct StoreReport {
    /// Per-shard recovery details, in shard-directory order.
    pub shards: Vec<ShardRecovery>,
    /// Shard directories skipped as unrecoverable (empty/partial).
    pub skipped: Vec<SkippedShard>,
}

/// What [`open_sharded`] recovers: the rebuilt sharded index plus the
/// per-shard [`StoreReport`].
pub type RecoveredStore<K, V, I> = (ShardedIndex<K, V, DurableIndex<K, V, I>>, StoreReport);

/// Opens every shard of a store root as one [`ShardedIndex`] — the
/// service-level recovery path.
///
/// Shards are ordered by their smallest key and the routing boundaries
/// re-derived from those minimums. A directory that holds no
/// recoverable state (e.g. one minted by a split that crashed before
/// its first snapshot landed) is *skipped and reported* in the
/// [`StoreReport`], not fatal. Overlapping spans — the crash window
/// between the two checkpoints of a split or merge, which duplicates
/// the moved run — are reconciled by dropping the duplicated tail from
/// the lower shard, so the recovered index is always disjoint and no
/// key is ever lost. Shards that recover empty are dropped — a merge
/// drained them before the crash — unless *every* shard is empty, in
/// which case one empty shard is kept so the index stays usable.
///
/// # Errors
///
/// [`OpenError::NoShards`] when the root holds no shard directories;
/// the first per-shard error when *no* directory recovers at all.
pub fn open_sharded<K, V, I>(
    config: &DurableConfig<I::Config>,
) -> Result<RecoveredStore<K, V, I>, OpenError>
where
    K: Key,
    V: Key,
    I: BuildableIndex<K, V> + PageSnapshot + 'static,
{
    let root = config.root();
    let scan_retries = AtomicU64::new(0);
    let names = config.store.run(&scan_retries, IoOp::ReadDir, root, |io| {
        io.read_dir_names(root)
    })?;
    let mut shard_dirs: Vec<(u64, PathBuf)> = names
        .iter()
        .filter_map(|name| Some((parse_shard_id(name)?, root.join(name))))
        .collect();
    if shard_dirs.is_empty() {
        return Err(OpenError::NoShards(root.to_path_buf()));
    }
    shard_dirs.sort_unstable_by_key(|&(id, _)| id);

    let mut report = StoreReport::default();
    let mut opened: Vec<(Option<K>, DurableIndex<K, V, I>)> = Vec::with_capacity(shard_dirs.len());
    for (_, dir) in shard_dirs {
        match DurableIndex::open_shard(config, &dir) {
            Ok((shard, recovery)) => {
                report.shards.push(recovery);
                let min = shard.min_key();
                opened.push((min, shard));
            }
            Err(error) => report.skipped.push(SkippedShard { dir, error }),
        }
    }
    if opened.is_empty() {
        // Nothing recovered at all: that *is* fatal. Surface the first
        // per-shard failure (there is at least one — shard_dirs was
        // non-empty).
        return Err(report
            .skipped
            .into_iter()
            .next()
            .map_or(OpenError::NoShards(root.to_path_buf()), |s| s.error));
    }

    // Drop drained shards (merge leftovers), keeping one if all are
    // empty; order survivors by key span.
    let any_nonempty = opened.iter().any(|(min, _)| min.is_some());
    let mut survivors: Vec<(Option<K>, DurableIndex<K, V, I>)> = if any_nonempty {
        opened
            .into_iter()
            .filter(|(min, _)| min.is_some())
            .collect()
    } else {
        opened.truncate(1);
        opened
    };
    survivors.sort_by_key(|(min, _)| *min);

    // Reconcile overlapping spans pairwise: every key >= the next
    // shard's minimum is a duplicate left behind by an interrupted
    // split/merge — the next shard owns it now.
    for i in 0..survivors.len().saturating_sub(1) {
        let Some(right_min) = survivors[i + 1].0 else {
            continue;
        };
        let dropped = survivors[i].1.reconcile_drop_tail(&right_min);
        if dropped > 0 {
            let dir = survivors[i].1.shard_dir().to_path_buf();
            if let Some(r) = report.shards.iter_mut().find(|r| r.dir == dir) {
                r.overlap_dropped = dropped;
            }
        }
    }
    // Reconciliation can fully drain a lower shard (identical spans);
    // refilter, keeping at least one shard.
    let still_nonempty = survivors.iter().any(|(_, s)| !s.is_empty());
    if still_nonempty {
        survivors.retain(|(_, s)| !s.is_empty());
    } else {
        survivors.truncate(1);
    }

    let bounds: Vec<K> = survivors
        .iter()
        .skip(1)
        .filter_map(|(_, s)| s.min_key())
        .collect();
    let shards: Vec<DurableIndex<K, V, I>> =
        survivors.into_iter().map(|(_, shard)| shard).collect();
    Ok((ShardedIndex::from_shards(bounds, shards), report))
}

impl<K: Key, V: Key, I: SortedIndex<K, V> + PageSnapshot> SortedIndex<K, V>
    for DurableIndex<K, V, I>
{
    type RangeIter<'a>
        = I::RangeIter<'a>
    where
        Self: 'a,
        K: 'a,
        V: 'a;

    fn name(&self) -> &'static str {
        "Durable"
    }

    fn get(&self, key: &K) -> Option<&V> {
        self.inner.get(key)
    }

    fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.try_insert(key, value) {
            Ok(prev) => prev,
            Err(Degraded) => panic!(
                "write refused: shard degraded ({}); use try_insert and check health()",
                self.degraded_reason().unwrap_or("unknown")
            ),
        }
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        match self.try_remove(key) {
            Ok(prev) => prev,
            Err(Degraded) => panic!(
                "write refused: shard degraded ({}); use try_remove and check health()",
                self.degraded_reason().unwrap_or("unknown")
            ),
        }
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }

    fn range<R: RangeBounds<K>>(&self, range: R) -> Self::RangeIter<'_> {
        self.inner.range(range)
    }

    fn insert_many(&mut self, batch: Vec<(K, V)>) -> usize {
        match self.try_insert_many(batch) {
            Ok(fresh) => fresh,
            Err(Degraded) => panic!(
                "write refused: shard degraded ({}); use try_insert_many and check health()",
                self.degraded_reason().unwrap_or("unknown")
            ),
        }
    }

    fn try_insert(&mut self, key: K, value: V) -> Result<Option<V>, Degraded> {
        if self.degraded.is_some() {
            return Err(Degraded);
        }
        self.wal.append(&WalOp::Insert(key, value));
        Ok(self.inner.insert(key, value))
    }

    fn try_remove(&mut self, key: &K) -> Result<Option<V>, Degraded> {
        if self.degraded.is_some() {
            return Err(Degraded);
        }
        self.wal.append(&WalOp::Remove(*key));
        Ok(self.inner.remove(key))
    }

    fn try_insert_many(&mut self, batch: Vec<(K, V)>) -> Result<usize, Degraded> {
        if self.degraded.is_some() {
            return Err(Degraded);
        }
        self.wal.append(&WalOp::InsertMany(&batch));
        Ok(self.inner.insert_many(batch))
    }

    fn split_off_tail(&mut self, at: &K) -> Option<Self> {
        if self.degraded.is_some() {
            return None;
        }
        let right_inner = self.inner.split_off_tail(at)?;
        // The new shard's storage is created *before* this shard's
        // checkpoint drops the moved run from disk: a failure (or
        // crash) between the two duplicates the run across both
        // directories — open_sharded reconciles duplicates; the
        // reverse order could lose it.
        let right = match DurableIndex::create(right_inner, Arc::clone(&self.store)) {
            Ok(right) => right,
            Err((e, mut right_inner)) => {
                // Undo the in-memory move; disk never changed.
                if !self.inner.absorb_tail(&mut right_inner) {
                    let all: (Bound<K>, Bound<K>) = (Bound::Unbounded, Bound::Unbounded);
                    let pairs: Vec<(K, V)> = right_inner.range(all).collect();
                    self.inner.insert_many(pairs);
                }
                self.degrade(&e);
                return None;
            }
        };
        if let Err(e) = self.checkpoint_now() {
            // The moved run now exists in both directories; reads and
            // the in-memory split stay correct, reopen reconciles the
            // overlap, and this shard refuses writes until a later
            // checkpoint heals it (which also resolves the overlap).
            self.degrade(&e);
        }
        Some(right)
    }

    fn absorb_tail(&mut self, other: &mut Self) -> bool {
        if self.degraded.is_some() || other.degraded.is_some() {
            return false;
        }
        let other_min = other.min_key();
        if !self.inner.absorb_tail(&mut other.inner) {
            return false;
        }
        // Persist the absorber before draining the donor: a failure
        // (or crash) between the two duplicates the absorbed run —
        // reconciled at reopen — rather than losing it.
        if let Err(e) = self.checkpoint_now() {
            // Undo the in-memory absorb so memory and disk agree.
            let undone = match &other_min {
                Some(min) => match self.inner.split_off_tail(min) {
                    Some(tail) => {
                        other.inner = tail;
                        true
                    }
                    None => false,
                },
                None => true, // absorbed nothing
            };
            self.degrade(&e);
            // If the undo failed the absorbed keys live on in memory
            // here and on disk in the donor's directory — nothing
            // lost; reopen reconciles.
            return !undone;
        }
        if let Err(e) = other.checkpoint_now() {
            // Donor disk still holds the moved run (now duplicated in
            // this shard's generation) — reconciled at reopen.
            other.degrade(&e);
        }
        true
    }

    fn disk_bytes(&self) -> usize {
        self.disk_bytes
    }

    fn wal_bytes(&self) -> usize {
        self.wal.bytes() as usize
    }

    fn sync(&mut self) -> bool {
        self.try_sync().unwrap_or(false)
    }

    fn checkpoint(&mut self) -> bool {
        self.try_checkpoint().unwrap_or(false)
    }

    fn try_sync(&mut self) -> Result<bool, Degraded> {
        // Attempted even when degraded: flushing the buffered suffix
        // narrows the loss window of already-acknowledged records.
        // `true` = the flush happened (the `sync` contract); whether
        // the policy also fsynced is the Wal's business.
        match self.wal.commit() {
            Ok(_) => Ok(true),
            Err(e) => {
                self.degrade(&e);
                Err(Degraded)
            }
        }
    }

    fn try_checkpoint(&mut self) -> Result<bool, Degraded> {
        match self.checkpoint_now() {
            Ok(()) => {
                // A clean rotation proves the disk is writable again
                // and captures the full in-memory state: heal.
                self.degraded = None;
                Ok(true)
            }
            Err(e) => {
                self.degrade(&e);
                Err(Degraded)
            }
        }
    }

    fn health(&self) -> ShardHealth {
        if self.degraded.is_some() {
            ShardHealth::Degraded
        } else {
            ShardHealth::Healthy
        }
    }

    fn io_retries(&self) -> u64 {
        // ordering: Relaxed — monotonic stats counter for snapshots.
        self.retries.load(Ordering::Relaxed)
    }

    fn reload(&mut self) -> bool {
        self.reopen_in_place().is_ok()
    }
}

impl<K: Key, V: Key, I: BuildableIndex<K, V> + PageSnapshot> BuildableIndex<K, V>
    for DurableIndex<K, V, I>
{
    type Config = DurableConfig<I::Config>;
    type BuildError = StorageBuildError<I::BuildError>;

    fn build_sorted(config: &Self::Config, sorted: Vec<(K, V)>) -> Result<Self, Self::BuildError> {
        let inner = I::build_sorted(&config.inner, sorted).map_err(StorageBuildError::Build)?;
        DurableIndex::create(inner, Arc::clone(&config.store))
            .map_err(|(e, _)| StorageBuildError::Io(e))
    }
}
