//! Deterministic fault injection behind the [`StorageIo`] trait.
//!
//! [`FaultIo`] wraps [`RealIo`] and, before every operation, consults a
//! seeded schedule: the same `(seed, plan, workload)` triple always
//! injects the same faults at the same call sites, so any chaos-battery
//! failure is replayable from one line of text (see
//! [`FaultIo::injections`]).
//!
//! Two injection sources compose:
//!
//! * **Seeded schedule** ([`FaultPlan`]) — an LCG rolls per operation
//!   for EIO, ENOSPC, transient (`EINTR`-class) errors, latency
//!   spikes, and short writes; a fault may additionally kill its path
//!   *forever* (every later op on it fails the same way — the
//!   fail-once vs fail-forever axis).
//! * **Targeted faults** ([`FaultIo::fail_nth`]) — "fail the 2nd fsync
//!   on any path containing `snapshot.tmp` with ENOSPC", for
//!   step-by-step surgical tests like the checkpoint-rotation battery.
//!
//! A short write really writes a prefix of the buffer through to the
//! real file (tearing the record on disk) and then fails the *next*
//! write on that path — exactly the ENOSPC-mid-append shape. A "torn
//! fsync" is an fsync that reports failure after data already reached
//! the file, which is what wrapping the real handle gives naturally.

use crate::error::IoOp;
use crate::io::{IoFile, RealIo, StorageIo};
use parking_lot::Mutex;
use std::io::{Error, ErrorKind};
use std::path::Path;
use std::sync::Arc;

/// What an injected fault presents as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectKind {
    /// Permanent I/O error (`EIO`).
    Eio,
    /// Disk full (`ENOSPC`).
    Enospc,
    /// Transient error (`EINTR`-class) — a retry policy absorbs it.
    Transient,
    /// Write a prefix of the buffer, then fail the next write on the
    /// path — a torn record on disk. Only meaningful for writes; on
    /// other ops it degrades to [`InjectKind::Eio`].
    ShortWrite,
    /// No error: the operation succeeds after a small injected delay.
    Latency,
}

impl InjectKind {
    fn error(self) -> Error {
        match self {
            InjectKind::Eio | InjectKind::ShortWrite | InjectKind::Latency => {
                Error::other("injected EIO")
            }
            InjectKind::Enospc => Error::new(ErrorKind::StorageFull, "injected ENOSPC"),
            InjectKind::Transient => Error::new(ErrorKind::Interrupted, "injected EINTR"),
        }
    }
}

/// The seeded portion of a fault schedule. All rates are per-mille per
/// operation; `budget` caps the number of seeded injections so every
/// schedule eventually quiesces (targeted faults and already-dead paths
/// are not budgeted — a killed path stays dead).
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Seed for the injection LCG.
    pub seed: u64,
    /// Chance any single operation faults.
    pub fault_per_mille: u32,
    /// Given a permanent fault, chance the path dies forever.
    pub forever_per_mille: u32,
    /// Maximum seeded injections before the schedule quiesces.
    pub budget: u32,
}

impl FaultPlan {
    /// A quiet plan: no seeded faults (targeted faults still fire).
    #[must_use]
    pub fn quiet() -> Self {
        FaultPlan {
            seed: 0,
            fault_per_mille: 0,
            forever_per_mille: 0,
            budget: 0,
        }
    }

    /// Derives a full plan from one seed: fault rate 2–12%, forever
    /// rate 0–30%, budget 1–8 injections. Covers the whole
    /// fail-once/fail-forever × sparse/dense schedule space as the
    /// seed sweeps.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        let mut x = seed ^ 0x5de7_1f0a_9c3b_8e41;
        let mut next = move || {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            x >> 33
        };
        FaultPlan {
            seed,
            fault_per_mille: 20 + (next() % 101) as u32,
            forever_per_mille: (next() % 301) as u32,
            budget: 1 + (next() % 8) as u32,
        }
    }
}

#[derive(Debug)]
struct Target {
    op: IoOp,
    path_contains: String,
    nth: u64,
    kind: InjectKind,
    forever: bool,
    seen: u64,
    spent: bool,
}

#[derive(Debug)]
struct State {
    rng: u64,
    plan: FaultPlan,
    armed: bool,
    injected: u32,
    ops: u64,
    /// Paths killed forever, with the error kind they die with.
    dead: Vec<(String, InjectKind)>,
    /// One-shot follow-ups (the failing half of a short write).
    pending: Vec<(String, InjectKind)>,
    targets: Vec<Target>,
    log: Vec<String>,
}

impl State {
    fn roll(&mut self) -> u64 {
        self.rng = self
            .rng
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.rng >> 33
    }
}

/// What `decide` tells the wrapper to do for one operation.
enum Decision {
    Proceed,
    Sleep,
    Fail(InjectKind),
    /// Write only this many bytes through, then arm a follow-up
    /// failure on the path.
    Short(usize),
}

/// A [`StorageIo`] that injects a deterministic, seeded fault schedule
/// in front of the real filesystem.
pub struct FaultIo {
    inner: RealIo,
    state: Arc<Mutex<State>>,
}

impl std::fmt::Debug for FaultIo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("FaultIo")
            .field("plan", &state.plan)
            .field("armed", &state.armed)
            .field("ops", &state.ops)
            .field("injected", &state.injected)
            .finish_non_exhaustive()
    }
}

impl FaultIo {
    /// A harness following `plan`'s seeded schedule.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        FaultIo {
            inner: RealIo,
            state: Arc::new(Mutex::new(State {
                rng: plan.seed ^ 0x9e37_79b9_7f4a_7c15,
                plan,
                armed: true,
                injected: 0,
                ops: 0,
                dead: Vec::new(),
                pending: Vec::new(),
                targets: Vec::new(),
                log: Vec::new(),
            })),
        }
    }

    /// A harness with no seeded faults — arm targeted ones with
    /// [`fail_nth`](Self::fail_nth).
    #[must_use]
    pub fn quiet() -> Self {
        FaultIo::new(FaultPlan::quiet())
    }

    /// Arms a targeted fault: the `nth` (1-based) operation of kind
    /// `op` whose path contains `path_contains` fails as `kind`;
    /// `forever` additionally kills the path for every later
    /// operation.
    pub fn fail_nth(
        &self,
        op: IoOp,
        path_contains: &str,
        nth: u64,
        kind: InjectKind,
        forever: bool,
    ) {
        self.state.lock().targets.push(Target {
            op,
            path_contains: path_contains.to_string(),
            nth: nth.max(1),
            kind,
            forever,
            seen: 0,
            spent: false,
        });
    }

    /// (Re-)enables injection — the chaos battery's "storm starts now"
    /// switch, flipped after building a store under clean I/O. Targets
    /// already spent and paths revived by [`disarm`](Self::disarm)
    /// stay that way; the seeded schedule resumes where it left off.
    pub fn arm(&self) {
        self.state.lock().armed = true;
    }

    /// Stops all injection (seeded and targeted) and revives dead
    /// paths — the quiesce switch a test flips before its final
    /// verification phase.
    pub fn disarm(&self) {
        let mut s = self.state.lock();
        s.armed = false;
        s.dead.clear();
        s.pending.clear();
        for t in &mut s.targets {
            t.spent = true;
        }
    }

    /// Number of faults injected so far.
    #[must_use]
    pub fn injection_count(&self) -> u64 {
        self.state.lock().log.len() as u64
    }

    /// The replay log: one line per injected fault
    /// (`#<op-index> <op> <path> -> <kind>`). With the plan's seed,
    /// this pins the schedule exactly.
    #[must_use]
    pub fn injections(&self) -> Vec<String> {
        self.state.lock().log.clone()
    }

    /// Decides the fate of one operation. `write_len` is `Some` for
    /// writes (enables short-write injection).
    fn decide(&self, op: IoOp, path: &Path, write_len: Option<usize>) -> Decision {
        let path_str = path.to_string_lossy();
        let mut s = self.state.lock();
        s.ops += 1;
        let at = s.ops;
        if !s.armed {
            return Decision::Proceed;
        }

        // Dead path: every operation fails the way the path died.
        if let Some((_, kind)) = s.dead.iter().find(|(p, _)| *p == path_str) {
            let kind = *kind;
            let line = format!("#{at} {op} {path_str} -> dead-path {kind:?}");
            s.log.push(line);
            return Decision::Fail(kind);
        }

        // One-shot follow-up (second half of a short write).
        if let Some(i) = s.pending.iter().position(|(p, _)| *p == path_str) {
            let (_, kind) = s.pending.swap_remove(i);
            let line = format!("#{at} {op} {path_str} -> short-write follow-up {kind:?}");
            s.log.push(line);
            return Decision::Fail(kind);
        }

        // Targeted faults.
        for i in 0..s.targets.len() {
            let t = &mut s.targets[i];
            if t.spent || t.op != op || !path_str.contains(&t.path_contains) {
                continue;
            }
            t.seen += 1;
            if t.seen != t.nth {
                continue;
            }
            t.spent = true;
            let kind = t.kind;
            let forever = t.forever;
            if forever {
                s.dead.push((path_str.clone().into_owned(), kind));
            }
            let line = format!("#{at} {op} {path_str} -> targeted {kind:?} forever={forever}");
            s.log.push(line);
            return match (kind, write_len) {
                (InjectKind::Latency, _) => Decision::Sleep,
                (InjectKind::ShortWrite, Some(len)) if len > 1 => {
                    let cut = 1 + (s.roll() as usize) % (len - 1);
                    s.pending.push((path_str.into_owned(), InjectKind::Enospc));
                    Decision::Short(cut)
                }
                _ => Decision::Fail(kind),
            };
        }

        // Seeded schedule.
        if s.injected >= s.plan.budget || s.plan.fault_per_mille == 0 {
            return Decision::Proceed;
        }
        if s.roll() % 1000 >= u64::from(s.plan.fault_per_mille) {
            return Decision::Proceed;
        }
        s.injected += 1;
        let kind = match s.roll() % 10 {
            0 | 1 => InjectKind::Transient,
            2 | 3 => InjectKind::Enospc,
            4 => InjectKind::Latency,
            5 if write_len.is_some_and(|l| l > 1) => InjectKind::ShortWrite,
            _ => InjectKind::Eio,
        };
        let forever = matches!(kind, InjectKind::Eio | InjectKind::Enospc)
            && s.roll() % 1000 < u64::from(s.plan.forever_per_mille);
        if forever {
            s.dead.push((path_str.clone().into_owned(), kind));
        }
        let line = format!("#{at} {op} {path_str} -> seeded {kind:?} forever={forever}");
        s.log.push(line);
        match (kind, write_len) {
            (InjectKind::Latency, _) => Decision::Sleep,
            (InjectKind::ShortWrite, Some(len)) => {
                let cut = 1 + (s.roll() as usize) % (len - 1);
                s.pending.push((path_str.into_owned(), InjectKind::Enospc));
                Decision::Short(cut)
            }
            _ => Decision::Fail(kind),
        }
    }

    fn gate(&self, op: IoOp, path: &Path) -> std::io::Result<()> {
        match self.decide(op, path, None) {
            Decision::Proceed => Ok(()),
            Decision::Sleep => {
                std::thread::sleep(std::time::Duration::from_micros(200));
                Ok(())
            }
            Decision::Fail(kind) => Err(kind.error()),
            Decision::Short(_) => Err(InjectKind::Eio.error()),
        }
    }
}

/// A write handle whose operations keep consulting the shared
/// schedule.
struct FaultFile {
    inner: Box<dyn IoFile>,
    io: FaultIo,
    path: std::path::PathBuf,
}

impl IoFile for FaultFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self.io.decide(IoOp::Write, &self.path, Some(buf.len())) {
            Decision::Proceed => self.inner.write(buf),
            Decision::Sleep => {
                std::thread::sleep(std::time::Duration::from_micros(200));
                self.inner.write(buf)
            }
            Decision::Fail(kind) => Err(kind.error()),
            Decision::Short(cut) => {
                let cut = cut.min(buf.len());
                // Tear for real: the prefix reaches the file before the
                // follow-up failure fires on the next write.
                let mut done = 0;
                while done < cut {
                    done += self.inner.write(&buf[done..cut])?;
                }
                Ok(cut)
            }
        }
    }

    fn sync_data(&mut self) -> std::io::Result<()> {
        self.io.gate(IoOp::Fsync, &self.path)?;
        self.inner.sync_data()
    }
}

impl Clone for FaultIo {
    fn clone(&self) -> Self {
        FaultIo {
            inner: RealIo,
            state: Arc::clone(&self.state),
        }
    }
}

impl StorageIo for FaultIo {
    fn create(&self, path: &Path) -> std::io::Result<Box<dyn IoFile>> {
        self.gate(IoOp::Create, path)?;
        Ok(Box::new(FaultFile {
            inner: self.inner.create(path)?,
            io: self.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn open_append(&self, path: &Path, valid_len: u64) -> std::io::Result<Box<dyn IoFile>> {
        self.gate(IoOp::OpenAppend, path)?;
        Ok(Box::new(FaultFile {
            inner: self.inner.open_append(path, valid_len)?,
            io: self.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        self.gate(IoOp::Read, path)?;
        self.inner.read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        self.gate(IoOp::Rename, from)?;
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        self.gate(IoOp::RemoveFile, path)?;
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> std::io::Result<()> {
        self.gate(IoOp::CreateDir, path)?;
        self.inner.create_dir_all(path)
    }

    fn read_dir_names(&self, path: &Path) -> std::io::Result<Vec<String>> {
        self.gate(IoOp::ReadDir, path)?;
        self.inner.read_dir_names(path)
    }

    fn sync_dir(&self, path: &Path) -> std::io::Result<()> {
        self.gate(IoOp::SyncDir, path)?;
        self.inner.sync_dir(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("fiting-fault-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn targeted_fault_fires_on_nth_match_only() {
        let dir = scratch("targeted");
        let io = FaultIo::quiet();
        io.fail_nth(IoOp::Fsync, "a.bin", 2, InjectKind::Enospc, false);
        let mut f = io.create(&dir.join("a.bin")).unwrap();
        f.write(b"x").unwrap();
        f.sync_data().unwrap(); // 1st fsync passes
        let err = f.sync_data().unwrap_err(); // 2nd injected
        assert_eq!(err.kind(), ErrorKind::StorageFull);
        f.sync_data().unwrap(); // spent: 3rd passes
        assert_eq!(io.injection_count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fail_forever_kills_the_path_until_disarm() {
        let dir = scratch("forever");
        let io = FaultIo::quiet();
        io.fail_nth(IoOp::Write, "w.bin", 1, InjectKind::Eio, true);
        let mut f = io.create(&dir.join("w.bin")).unwrap();
        assert!(f.write(b"x").is_err());
        assert!(f.write(b"x").is_err()); // dead path
        assert!(f.sync_data().is_err()); // every op on the path dies
        io.disarm();
        assert_eq!(f.write(b"x").unwrap(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_write_tears_for_real_then_fails() {
        let dir = scratch("short");
        let io = FaultIo::quiet();
        io.fail_nth(IoOp::Write, "t.bin", 1, InjectKind::ShortWrite, false);
        let p = dir.join("t.bin");
        let mut f = io.create(&p).unwrap();
        let n = f.write(b"0123456789").unwrap();
        assert!((1..10).contains(&n), "short write must be a strict prefix");
        let err = f.write(&b"0123456789"[n..]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::StorageFull);
        drop(f);
        assert_eq!(RealIo.read(&p).unwrap(), &b"0123456789"[..n]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeded_schedules_are_deterministic_and_replayable() {
        let dir = scratch("seeded");
        let plan = FaultPlan {
            seed: 42,
            fault_per_mille: 500,
            forever_per_mille: 200,
            budget: 16,
        };
        let run = |tag: &str| {
            let io = FaultIo::new(plan);
            let p = dir.join(format!("s-{tag}.bin"));
            for _ in 0..50 {
                if let Ok(mut f) = io.create(&p) {
                    let _ = f.write(b"abcdef");
                    let _ = f.sync_data();
                }
                let _ = io.read(&p);
            }
            io.injections()
                .iter()
                // Strip the path (differs per tag); keep op order + kinds.
                .map(|l| {
                    let head = l.split_whitespace().nth(1).unwrap().to_string();
                    let tail = l.split("-> ").nth(1).unwrap().to_string();
                    format!("{head} {tail}")
                })
                .collect::<Vec<_>>()
        };
        let a = run("a");
        let b = run("b");
        assert!(!a.is_empty(), "this seed must inject something");
        assert_eq!(a, b, "same seed + workload => same schedule");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_quiesces_the_seeded_schedule() {
        let dir = scratch("budget");
        let plan = FaultPlan {
            seed: 7,
            fault_per_mille: 1000,
            forever_per_mille: 0,
            budget: 3,
        };
        let io = FaultIo::new(plan);
        let p = dir.join("b.bin");
        let mut failures = 0;
        for _ in 0..40 {
            if io.create(&p).is_err() {
                failures += 1;
            }
        }
        // Exactly `budget` injections, then the schedule quiesces.
        // (Latency injections succeed, so failures <= injections.)
        assert_eq!(io.injection_count(), 3);
        assert!(failures <= 3, "failures={failures}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
