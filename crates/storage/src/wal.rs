//! The write-ahead log: per-record checksummed mutation journal.
//!
//! One log file per shard, one generation per checkpoint. Records are
//! buffered in user space and flushed at **group-commit points** —
//! [`Wal::commit`], which the service layer invokes once per drained
//! write batch — so the fsync cost amortizes over every mutation in
//! the batch instead of being paid per operation.
//!
//! # File layout
//!
//! ```text
//! header (16 bytes)
//!   0..8    magic "FITWAL01"
//!   8..10   key width in bytes   (u16)
//!   10..12  value width in bytes (u16)
//!   12..16  zero
//! record (repeated)
//!   0..4    payload length (u32)
//!   4..8    CRC32 of the payload
//!   8..     payload
//! payload
//!   op 1: insert      [1][key][value]
//!   op 2: remove      [2][key]
//!   op 3: insert_many [3][count u32][key value]×count
//! ```
//!
//! All integers little-endian; keys and values use the fixed-width
//! [`Key::to_le_bytes`] codecs, so every record's length is determined
//! by its first five bytes. Replay ([`replay`]) accepts the longest
//! prefix of intact records and reports the byte offset where it
//! stopped; the opener truncates the file there, which is what makes a
//! torn tail write indistinguishable from a clean shutdown one record
//! earlier — the recovery invariant the crash-injection suite checks.

use fiting_index_api::Key;
use fiting_tree::snapshot::crc32;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};

/// First eight bytes of every log file.
pub const WAL_MAGIC: [u8; 8] = *b"FITWAL01";

const WAL_HEADER_LEN: usize = 16;
const RECORD_HEADER_LEN: usize = 8;

/// When the log fsyncs at a group-commit point ([`Wal::commit`]).
///
/// Every policy *flushes* buffered records to the OS at commit; the
/// policy only decides when the OS is forced to put them on stable
/// storage. The durability windows are therefore: `Always` — nothing
/// committed is lost on a crash; `EveryN(n)` — at most the last `n`
/// records' worth of commits are lost on an OS crash (process crashes
/// lose nothing flushed); `Off` — anything since the last checkpoint
/// may be lost on an OS crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// fsync at every commit (the default; the safest and slowest).
    #[default]
    Always,
    /// fsync once at least this many records have accumulated since
    /// the previous fsync.
    EveryN(u64),
    /// Never fsync the log; rely on the OS to write back. Checkpoints
    /// still fsync their snapshots.
    Off,
}

/// One logged mutation, borrowed from the write path.
#[derive(Debug)]
pub enum WalOp<'a, K, V> {
    /// Upsert of one pair.
    Insert(K, V),
    /// Removal of one key.
    Remove(K),
    /// One batched upsert, logged as a single record.
    InsertMany(&'a [(K, V)]),
}

/// An owned mutation recovered from the log, replayed in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayOp<K, V> {
    /// Upsert of one pair.
    Insert(K, V),
    /// Removal of one key.
    Remove(K),
    /// One batched upsert.
    InsertMany(Vec<(K, V)>),
}

/// Outcome of scanning a log file ([`replay`]).
#[derive(Debug)]
pub struct Replay<K, V> {
    /// The intact records, in append order.
    pub ops: Vec<ReplayOp<K, V>>,
    /// Byte offset of the first byte *not* covered by an intact
    /// record — where the opener truncates.
    pub valid_len: u64,
    /// Whether anything (a torn or corrupt tail) was discarded.
    pub truncated: bool,
}

/// Append handle over one log generation.
#[derive(Debug)]
pub struct Wal<K, V> {
    writer: BufWriter<File>,
    path: PathBuf,
    policy: FsyncPolicy,
    /// Record bytes appended this generation (excludes the header) —
    /// the `wal_bytes` statistic and the checkpoint trigger.
    bytes: u64,
    /// Records flushed-but-not-fsynced, for `EveryN`.
    unsynced: u64,
    _kv: PhantomData<(K, V)>,
}

impl<K: Key, V: Key> Wal<K, V> {
    /// Creates (truncating) a fresh log at `path` and durably writes
    /// its header.
    pub fn create(path: &Path, policy: FsyncPolicy) -> std::io::Result<Self> {
        let mut file = File::create(path)?;
        file.write_all(&header_bytes::<K, V>())?;
        file.sync_data()?;
        Ok(Wal {
            writer: BufWriter::new(file),
            path: path.to_path_buf(),
            policy,
            bytes: 0,
            unsynced: 0,
            _kv: PhantomData,
        })
    }

    /// Reopens an existing log for appending after [`replay`],
    /// truncating the torn/corrupt tail at `valid_len` first.
    pub fn open_append(path: &Path, policy: FsyncPolicy, valid_len: u64) -> std::io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_len)?;
        file.sync_data()?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok(Wal {
            writer: BufWriter::new(file),
            path: path.to_path_buf(),
            policy,
            bytes: valid_len - WAL_HEADER_LEN as u64,
            unsynced: 0,
            _kv: PhantomData,
        })
    }

    /// Appends one record to the user-space buffer. Not durable — not
    /// even handed to the OS — until the next [`commit`](Self::commit).
    pub fn append(&mut self, op: &WalOp<'_, K, V>) -> std::io::Result<()> {
        let payload = encode_payload(op);
        self.writer
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.writer.write_all(&crc32(&payload).to_le_bytes())?;
        self.writer.write_all(&payload)?;
        self.bytes += (RECORD_HEADER_LEN + payload.len()) as u64;
        self.unsynced += 1;
        Ok(())
    }

    /// Group-commit point: flushes every buffered record to the OS
    /// and, policy permitting, fsyncs. Returns whether an fsync
    /// happened.
    pub fn commit(&mut self) -> std::io::Result<bool> {
        self.writer.flush()?;
        let sync = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.unsynced >= n,
            FsyncPolicy::Off => false,
        };
        if sync {
            self.writer.get_ref().sync_data()?;
            self.unsynced = 0;
        }
        Ok(sync)
    }

    /// Record bytes appended this generation (excludes the header).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Path of the backing file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn header_bytes<K: Key, V: Key>() -> [u8; WAL_HEADER_LEN] {
    let mut h = [0u8; WAL_HEADER_LEN];
    h[0..8].copy_from_slice(&WAL_MAGIC);
    h[8..10].copy_from_slice(&(K::ENCODED_LEN as u16).to_le_bytes());
    h[10..12].copy_from_slice(&(V::ENCODED_LEN as u16).to_le_bytes());
    h
}

fn encode_payload<K: Key, V: Key>(op: &WalOp<'_, K, V>) -> Vec<u8> {
    match op {
        WalOp::Insert(k, v) => {
            let mut p = Vec::with_capacity(1 + K::ENCODED_LEN + V::ENCODED_LEN);
            p.push(1);
            p.extend_from_slice(&k.to_le_bytes());
            p.extend_from_slice(&v.to_le_bytes());
            p
        }
        WalOp::Remove(k) => {
            let mut p = Vec::with_capacity(1 + K::ENCODED_LEN);
            p.push(2);
            p.extend_from_slice(&k.to_le_bytes());
            p
        }
        WalOp::InsertMany(batch) => {
            let mut p = Vec::with_capacity(5 + batch.len() * (K::ENCODED_LEN + V::ENCODED_LEN));
            p.push(3);
            p.extend_from_slice(&(batch.len() as u32).to_le_bytes());
            for (k, v) in batch.iter() {
                p.extend_from_slice(&k.to_le_bytes());
                p.extend_from_slice(&v.to_le_bytes());
            }
            p
        }
    }
}

fn decode_payload<K: Key, V: Key>(payload: &[u8]) -> Option<ReplayOp<K, V>> {
    let pair = K::ENCODED_LEN + V::ENCODED_LEN;
    match payload.first()? {
        1 if payload.len() == 1 + pair => Some(ReplayOp::Insert(
            K::from_le_bytes(&payload[1..1 + K::ENCODED_LEN]),
            V::from_le_bytes(&payload[1 + K::ENCODED_LEN..]),
        )),
        2 if payload.len() == 1 + K::ENCODED_LEN => {
            Some(ReplayOp::Remove(K::from_le_bytes(&payload[1..])))
        }
        3 if payload.len() >= 5 => {
            let count = u32::from_le_bytes(payload[1..5].try_into().unwrap()) as usize;
            let body = &payload[5..];
            if body.len() != count * pair {
                return None;
            }
            Some(ReplayOp::InsertMany(
                body.chunks_exact(pair)
                    .map(|c| {
                        (
                            K::from_le_bytes(&c[..K::ENCODED_LEN]),
                            V::from_le_bytes(&c[K::ENCODED_LEN..]),
                        )
                    })
                    .collect(),
            ))
        }
        _ => None,
    }
}

/// Scans the log at `path`, returning the longest prefix of intact
/// records and the byte offset where scanning stopped.
///
/// A record is rejected — stopping the scan there, marking the replay
/// `truncated` — when its header is short, its payload is short, its
/// checksum mismatches, or its payload does not decode to a known op
/// shape.
///
/// # Errors
///
/// I/O errors reading the file, or a missing/foreign/width-mismatched
/// 16-byte file header (`InvalidData`). Header damage is an error
/// rather than a truncation because every record after it would be
/// suspect — recovery then falls back to the snapshot alone.
pub fn replay<K: Key, V: Key>(path: &Path) -> std::io::Result<Replay<K, V>> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < WAL_HEADER_LEN || bytes[0..8] != WAL_MAGIC || bytes[12..16] != [0u8; 4] {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "missing or foreign WAL header",
        ));
    }
    let kw = u16::from_le_bytes(bytes[8..10].try_into().unwrap()) as usize;
    let vw = u16::from_le_bytes(bytes[10..12].try_into().unwrap()) as usize;
    if kw != K::ENCODED_LEN || vw != V::ENCODED_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "WAL key/value widths {kw}/{vw} do not match {}/{}",
                K::ENCODED_LEN,
                V::ENCODED_LEN
            ),
        ));
    }

    let mut ops = Vec::new();
    let mut pos = WAL_HEADER_LEN;
    loop {
        if pos == bytes.len() {
            // Clean end: every byte accounted for.
            return Ok(Replay {
                ops,
                valid_len: pos as u64,
                truncated: false,
            });
        }
        let intact = (|| {
            let header = bytes.get(pos..pos + RECORD_HEADER_LEN)?;
            let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
            let stored_crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
            let payload = bytes.get(pos + RECORD_HEADER_LEN..pos + RECORD_HEADER_LEN + len)?;
            if crc32(payload) != stored_crc {
                return None;
            }
            decode_payload::<K, V>(payload).map(|op| (op, RECORD_HEADER_LEN + len))
        })();
        match intact {
            Some((op, advance)) => {
                ops.push(op);
                pos += advance;
            }
            None => {
                // Torn or corrupt tail: accept the prefix, report the
                // cut so the opener truncates it away.
                return Ok(Replay {
                    ops,
                    valid_len: pos as u64,
                    truncated: true,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fiting-wal-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.000000")
    }

    #[test]
    fn append_commit_replay_round_trips() {
        let path = tmp("roundtrip");
        let mut wal: Wal<u64, u64> = Wal::create(&path, FsyncPolicy::Always).unwrap();
        wal.append(&WalOp::Insert(1, 10)).unwrap();
        wal.append(&WalOp::Remove(2)).unwrap();
        wal.append(&WalOp::InsertMany(&[(3, 30), (4, 40)])).unwrap();
        assert!(wal.commit().unwrap());
        assert!(wal.bytes() > 0);
        drop(wal);

        let replayed = replay::<u64, u64>(&path).unwrap();
        assert!(!replayed.truncated);
        assert_eq!(
            replayed.ops,
            vec![
                ReplayOp::Insert(1, 10),
                ReplayOp::Remove(2),
                ReplayOp::InsertMany(vec![(3, 30), (4, 40)]),
            ]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_truncates_to_record_boundary() {
        let path = tmp("torn");
        let mut wal: Wal<u64, u64> = Wal::create(&path, FsyncPolicy::Off).unwrap();
        for i in 0..10u64 {
            wal.append(&WalOp::Insert(i, i)).unwrap();
        }
        wal.commit().unwrap();
        drop(wal);

        let full = std::fs::read(&path).unwrap();
        // Tear mid-way through the last record.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let replayed = replay::<u64, u64>(&path).unwrap();
        assert!(replayed.truncated);
        assert_eq!(replayed.ops.len(), 9);

        // Reopen for append at the reported boundary, add a record,
        // and the log is whole again.
        let mut wal: Wal<u64, u64> =
            Wal::open_append(&path, FsyncPolicy::Always, replayed.valid_len).unwrap();
        wal.append(&WalOp::Insert(99, 99)).unwrap();
        wal.commit().unwrap();
        drop(wal);
        let replayed = replay::<u64, u64>(&path).unwrap();
        assert!(!replayed.truncated);
        assert_eq!(replayed.ops.len(), 10);
        assert_eq!(*replayed.ops.last().unwrap(), ReplayOp::Insert(99, 99));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn every_n_policy_syncs_on_schedule() {
        let path = tmp("everyn");
        let mut wal: Wal<u64, u64> = Wal::create(&path, FsyncPolicy::EveryN(3)).unwrap();
        wal.append(&WalOp::Insert(1, 1)).unwrap();
        assert!(!wal.commit().unwrap());
        wal.append(&WalOp::Insert(2, 2)).unwrap();
        assert!(!wal.commit().unwrap());
        wal.append(&WalOp::Insert(3, 3)).unwrap();
        assert!(wal.commit().unwrap());
        // Counter reset after the fsync.
        wal.append(&WalOp::Insert(4, 4)).unwrap();
        assert!(!wal.commit().unwrap());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_header_is_an_error_not_a_truncation() {
        let path = tmp("foreign");
        std::fs::write(&path, b"not a wal at all").unwrap();
        assert!(replay::<u64, u64>(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
