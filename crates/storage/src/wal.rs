//! The write-ahead log: per-record checksummed mutation journal.
//!
//! One log file per shard, one generation per checkpoint. Records are
//! buffered in user space and flushed at **group-commit points** —
//! [`Wal::commit`], which the service layer invokes once per drained
//! write batch — so the fsync cost amortizes over every mutation in
//! the batch instead of being paid per operation.
//!
//! All file traffic goes through the injectable [`StorageIo`] boundary
//! and surfaces as classified [`StorageError`]s; transient faults are
//! absorbed by the owning store's [`RetryPolicy`] before a caller ever
//! sees them. [`append`](Wal::append) itself is infallible — it only
//! extends the user-space buffer — so every I/O failure is funneled to
//! the commit point, where the group-commit contract makes it safe to
//! reason about: a failed commit leaves the unflushed suffix buffered
//! (never re-written bytes already handed to the OS, so records cannot
//! duplicate) and a later commit resumes exactly where the fault hit.
//!
//! # File layout
//!
//! ```text
//! header (16 bytes)
//!   0..8    magic "FITWAL01"
//!   8..10   key width in bytes   (u16)
//!   10..12  value width in bytes (u16)
//!   12..16  zero
//! record (repeated)
//!   0..4    payload length (u32)
//!   4..8    CRC32 of the payload
//!   8..     payload
//! payload
//!   op 1: insert      [1][key][value]
//!   op 2: remove      [2][key]
//!   op 3: insert_many [3][count u32][key value]×count
//! ```
//!
//! All integers little-endian; keys and values use the fixed-width
//! [`Key::to_le_bytes`] codecs, so every record's length is determined
//! by its first five bytes. Replay ([`replay`]) accepts the longest
//! prefix of intact records and reports the byte offset where it
//! stopped; the opener truncates the file there, which is what makes a
//! torn tail write indistinguishable from a clean shutdown one record
//! earlier — the recovery invariant the crash-injection suite checks.

use crate::error::{IoOp, RetryPolicy, StorageError};
use crate::io::{IoFile, StorageIo};
use fiting_index_api::Key;
use fiting_tree::snapshot::crc32;
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// First eight bytes of every log file.
pub const WAL_MAGIC: [u8; 8] = *b"FITWAL01";

const WAL_HEADER_LEN: usize = 16;
const RECORD_HEADER_LEN: usize = 8;

/// When the log fsyncs at a group-commit point ([`Wal::commit`]).
///
/// Every policy *flushes* buffered records to the OS at commit; the
/// policy only decides when the OS is forced to put them on stable
/// storage. The durability windows are therefore: `Always` — nothing
/// committed is lost on a crash; `EveryN(n)` — at most the last `n`
/// records' worth of commits are lost on an OS crash (process crashes
/// lose nothing flushed); `Off` — anything since the last checkpoint
/// may be lost on an OS crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// fsync at every commit (the default; the safest and slowest).
    #[default]
    Always,
    /// fsync once at least this many records have accumulated since
    /// the previous fsync.
    EveryN(u64),
    /// Never fsync the log; rely on the OS to write back. Checkpoints
    /// still fsync their snapshots.
    Off,
}

/// One logged mutation, borrowed from the write path.
#[derive(Debug)]
pub enum WalOp<'a, K, V> {
    /// Upsert of one pair.
    Insert(K, V),
    /// Removal of one key.
    Remove(K),
    /// One batched upsert, logged as a single record.
    InsertMany(&'a [(K, V)]),
}

/// An owned mutation recovered from the log, replayed in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayOp<K, V> {
    /// Upsert of one pair.
    Insert(K, V),
    /// Removal of one key.
    Remove(K),
    /// One batched upsert.
    InsertMany(Vec<(K, V)>),
}

/// Outcome of scanning a log file ([`replay`]).
#[derive(Debug)]
pub struct Replay<K, V> {
    /// The intact records, in append order.
    pub ops: Vec<ReplayOp<K, V>>,
    /// Byte offset of the first byte *not* covered by an intact
    /// record — where the opener truncates.
    pub valid_len: u64,
    /// Whether anything (a torn or corrupt tail) was discarded.
    pub truncated: bool,
}

/// Append handle over one log generation.
pub struct Wal<K, V> {
    file: Box<dyn IoFile>,
    path: PathBuf,
    policy: FsyncPolicy,
    /// Encoded records not yet handed to the OS. `flushed` marks the
    /// prefix already written through (a failed commit may stop
    /// mid-buffer; those bytes are never re-sent).
    buf: Vec<u8>,
    flushed: usize,
    /// Record bytes appended this generation (excludes the header) —
    /// the `wal_bytes` statistic and the checkpoint trigger.
    bytes: u64,
    /// Records flushed-but-not-fsynced, for `EveryN`.
    unsynced: u64,
    retry: Arc<RetryPolicy>,
    retries: Arc<AtomicU64>,
    _kv: PhantomData<(K, V)>,
}

impl<K, V> std::fmt::Debug for Wal<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("policy", &self.policy)
            .field("bytes", &self.bytes)
            .field("buffered", &(self.buf.len() - self.flushed))
            .finish_non_exhaustive()
    }
}

impl<K: Key, V: Key> Wal<K, V> {
    /// Creates (truncating) a fresh log at `path` and durably writes
    /// its header.
    ///
    /// # Errors
    ///
    /// Any classified I/O failure creating, writing, or syncing the
    /// file (transients already retried per `retry`).
    pub fn create(
        io: &dyn StorageIo,
        path: &Path,
        policy: FsyncPolicy,
        retry: Arc<RetryPolicy>,
        retries: Arc<AtomicU64>,
    ) -> Result<Self, StorageError> {
        let file = retry.run(&retries, || {
            io.create(path)
                .map_err(|e| StorageError::new(IoOp::Create, path, e))
        })?;
        let mut wal = Wal {
            file,
            path: path.to_path_buf(),
            policy,
            buf: header_bytes::<K, V>().to_vec(),
            flushed: 0,
            bytes: 0,
            unsynced: 0,
            retry,
            retries,
            _kv: PhantomData,
        };
        wal.flush_buffer()?;
        wal.fsync()?;
        Ok(wal)
    }

    /// Reopens an existing log for appending after [`replay`],
    /// truncating the torn/corrupt tail at `valid_len` first.
    ///
    /// # Errors
    ///
    /// Any classified I/O failure opening or syncing the truncated
    /// file (transients already retried per `retry`).
    pub fn open_append(
        io: &dyn StorageIo,
        path: &Path,
        policy: FsyncPolicy,
        valid_len: u64,
        retry: Arc<RetryPolicy>,
        retries: Arc<AtomicU64>,
    ) -> Result<Self, StorageError> {
        let file = retry.run(&retries, || {
            io.open_append(path, valid_len)
                .map_err(|e| StorageError::new(IoOp::OpenAppend, path, e))
        })?;
        let mut wal = Wal {
            file,
            path: path.to_path_buf(),
            policy,
            buf: Vec::new(),
            flushed: 0,
            bytes: valid_len - WAL_HEADER_LEN as u64,
            unsynced: 0,
            retry,
            retries,
            _kv: PhantomData,
        };
        // Make the tail truncation itself durable before new records
        // land after the valid prefix.
        wal.fsync()?;
        Ok(wal)
    }

    /// Appends one record to the user-space buffer. Infallible: not
    /// durable — not even handed to the OS — until the next
    /// [`commit`](Self::commit), which is where any I/O fault
    /// surfaces.
    pub fn append(&mut self, op: &WalOp<'_, K, V>) {
        let payload = encode_payload(op);
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        self.buf.extend_from_slice(&payload);
        self.bytes += (RECORD_HEADER_LEN + payload.len()) as u64;
        self.unsynced += 1;
    }

    /// Group-commit point: flushes every buffered record to the OS
    /// and, policy permitting, fsyncs. Returns whether an fsync
    /// happened.
    ///
    /// On failure the unflushed suffix stays buffered and a later
    /// commit resumes from the exact byte the fault hit — bytes
    /// already written are never re-sent, so a healed log contains
    /// each record once.
    ///
    /// # Errors
    ///
    /// Any classified I/O failure writing or syncing (transients
    /// already retried).
    pub fn commit(&mut self) -> Result<bool, StorageError> {
        self.flush_buffer()?;
        let sync = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.unsynced >= n,
            FsyncPolicy::Off => false,
        };
        if sync {
            self.fsync()?;
            self.unsynced = 0;
        }
        Ok(sync)
    }

    /// Whether records have been appended but not yet handed to the
    /// OS (a failed commit leaves such a suffix behind).
    #[must_use]
    pub fn has_buffered(&self) -> bool {
        self.flushed < self.buf.len()
    }

    /// Surrenders the whole buffered record stream (every record since
    /// the last fully-successful flush) and resets the buffer — the
    /// reopen handoff: `DurableIndex::reopen_in_place` re-applies these
    /// records to the freshly recovered state so an acknowledged write
    /// never dies with the handle.
    ///
    /// The returned bytes are a bare concatenation of intact records
    /// (no file header; [`append`](Wal::append) only ever pushes whole
    /// records and [`create`](Wal::create) flushes the header before
    /// returning), decodable with [`decode_records`]. Records already
    /// partially flushed may exist on disk too — re-applying a
    /// contiguous record suffix twice is harmless because every op is a
    /// last-write-wins state setter. After this call the handle must
    /// not be used for further appends: the file may end mid-record.
    pub(crate) fn take_buffer(&mut self) -> Vec<u8> {
        self.flushed = 0;
        std::mem::take(&mut self.buf)
    }

    /// Record bytes appended this generation (excludes the header).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Path of the backing file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Writes the unflushed buffer suffix through, retrying
    /// transients; resets the buffer once everything reached the OS.
    fn flush_buffer(&mut self) -> Result<(), StorageError> {
        while self.flushed < self.buf.len() {
            let file = &mut self.file;
            let path = &self.path;
            let from = self.flushed;
            let buf = &self.buf;
            let n = self.retry.run(&self.retries, || {
                file.write(&buf[from..])
                    .map_err(|e| StorageError::new(IoOp::Write, path, e))
            })?;
            self.flushed += n;
        }
        self.buf.clear();
        self.flushed = 0;
        Ok(())
    }

    fn fsync(&mut self) -> Result<(), StorageError> {
        let file = &mut self.file;
        let path = &self.path;
        self.retry.run(&self.retries, || {
            file.sync_data()
                .map_err(|e| StorageError::new(IoOp::Fsync, path, e))
        })
    }
}

fn header_bytes<K: Key, V: Key>() -> [u8; WAL_HEADER_LEN] {
    let mut h = [0u8; WAL_HEADER_LEN];
    h[0..8].copy_from_slice(&WAL_MAGIC);
    h[8..10].copy_from_slice(&(K::ENCODED_LEN as u16).to_le_bytes());
    h[10..12].copy_from_slice(&(V::ENCODED_LEN as u16).to_le_bytes());
    h
}

fn encode_payload<K: Key, V: Key>(op: &WalOp<'_, K, V>) -> Vec<u8> {
    match op {
        WalOp::Insert(k, v) => {
            let mut p = Vec::with_capacity(1 + K::ENCODED_LEN + V::ENCODED_LEN);
            p.push(1);
            p.extend_from_slice(&k.to_le_bytes());
            p.extend_from_slice(&v.to_le_bytes());
            p
        }
        WalOp::Remove(k) => {
            let mut p = Vec::with_capacity(1 + K::ENCODED_LEN);
            p.push(2);
            p.extend_from_slice(&k.to_le_bytes());
            p
        }
        WalOp::InsertMany(batch) => {
            let mut p = Vec::with_capacity(5 + batch.len() * (K::ENCODED_LEN + V::ENCODED_LEN));
            p.push(3);
            p.extend_from_slice(&(batch.len() as u32).to_le_bytes());
            for (k, v) in batch.iter() {
                p.extend_from_slice(&k.to_le_bytes());
                p.extend_from_slice(&v.to_le_bytes());
            }
            p
        }
    }
}

fn decode_payload<K: Key, V: Key>(payload: &[u8]) -> Option<ReplayOp<K, V>> {
    let pair = K::ENCODED_LEN + V::ENCODED_LEN;
    match payload.first()? {
        1 if payload.len() == 1 + pair => Some(ReplayOp::Insert(
            K::from_le_bytes(&payload[1..1 + K::ENCODED_LEN]),
            V::from_le_bytes(&payload[1 + K::ENCODED_LEN..]),
        )),
        2 if payload.len() == 1 + K::ENCODED_LEN => {
            Some(ReplayOp::Remove(K::from_le_bytes(&payload[1..])))
        }
        3 if payload.len() >= 5 => {
            let count = u32::from_le_bytes(payload[1..5].try_into().ok()?) as usize;
            let body = &payload[5..];
            if body.len() != count * pair {
                return None;
            }
            Some(ReplayOp::InsertMany(
                body.chunks_exact(pair)
                    .map(|c| {
                        (
                            K::from_le_bytes(&c[..K::ENCODED_LEN]),
                            V::from_le_bytes(&c[K::ENCODED_LEN..]),
                        )
                    })
                    .collect(),
            ))
        }
        _ => None,
    }
}

/// Decodes a bare record stream — length/CRC-framed records with no
/// 16-byte file header, the shape `Wal::take_buffer` surrenders —
/// accepting the longest intact prefix and dropping a torn or corrupt
/// tail silently.
#[must_use]
pub fn decode_records<K: Key, V: Key>(bytes: &[u8]) -> Vec<ReplayOp<K, V>> {
    let mut ops = Vec::new();
    let mut pos = 0usize;
    while let Some((op, advance)) = decode_record_at::<K, V>(bytes, pos) {
        ops.push(op);
        pos += advance;
    }
    ops
}

/// Decodes the framed record starting at byte `pos`, returning the op
/// and the record's total length. `None` for a short, corrupt, or
/// unparseable record (including `pos` at/past the end).
fn decode_record_at<K: Key, V: Key>(bytes: &[u8], pos: usize) -> Option<(ReplayOp<K, V>, usize)> {
    let header = bytes.get(pos..pos + RECORD_HEADER_LEN)?;
    let len = u32::from_le_bytes(header[0..4].try_into().ok()?) as usize;
    let stored_crc = u32::from_le_bytes(header[4..8].try_into().ok()?);
    let payload = bytes.get(pos + RECORD_HEADER_LEN..pos + RECORD_HEADER_LEN + len)?;
    if crc32(payload) != stored_crc {
        return None;
    }
    decode_payload::<K, V>(payload).map(|op| (op, RECORD_HEADER_LEN + len))
}

/// Scans the log at `path`, returning the longest prefix of intact
/// records and the byte offset where scanning stopped.
///
/// A record is rejected — stopping the scan there, marking the replay
/// `truncated` — when its header is short, its payload is short, its
/// checksum mismatches, or its payload does not decode to a known op
/// shape.
///
/// # Errors
///
/// Classified I/O errors reading the file, or a
/// missing/foreign/width-mismatched 16-byte file header
/// (`InvalidData`). Header damage is an error rather than a truncation
/// because every record after it would be suspect — recovery then
/// falls back to the snapshot alone.
pub fn replay<K: Key, V: Key>(
    io: &dyn StorageIo,
    path: &Path,
) -> Result<Replay<K, V>, StorageError> {
    let bytes = io
        .read(path)
        .map_err(|e| StorageError::new(IoOp::Read, path, e))?;
    let invalid = |msg: String| {
        StorageError::new(
            IoOp::Read,
            path,
            std::io::Error::new(std::io::ErrorKind::InvalidData, msg),
        )
    };
    if bytes.len() < WAL_HEADER_LEN || bytes[0..8] != WAL_MAGIC || bytes[12..16] != [0u8; 4] {
        return Err(invalid("missing or foreign WAL header".to_string()));
    }
    let kw = bytes[8..10]
        .try_into()
        .map(u16::from_le_bytes)
        .unwrap_or_default() as usize;
    let vw = bytes[10..12]
        .try_into()
        .map(u16::from_le_bytes)
        .unwrap_or_default() as usize;
    if kw != K::ENCODED_LEN || vw != V::ENCODED_LEN {
        return Err(invalid(format!(
            "WAL key/value widths {kw}/{vw} do not match {}/{}",
            K::ENCODED_LEN,
            V::ENCODED_LEN
        )));
    }

    let mut ops = Vec::new();
    let mut pos = WAL_HEADER_LEN;
    loop {
        if pos == bytes.len() {
            // Clean end: every byte accounted for.
            return Ok(Replay {
                ops,
                valid_len: pos as u64,
                truncated: false,
            });
        }
        match decode_record_at::<K, V>(&bytes, pos) {
            Some((op, advance)) => {
                ops.push(op);
                pos += advance;
            }
            None => {
                // Torn or corrupt tail: accept the prefix, report the
                // cut so the opener truncates it away.
                return Ok(Replay {
                    ops,
                    valid_len: pos as u64,
                    truncated: true,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultIo, InjectKind};
    use crate::io::RealIo;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fiting-wal-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.000000")
    }

    fn retry() -> (Arc<RetryPolicy>, Arc<AtomicU64>) {
        (
            Arc::new(RetryPolicy::immediate(3)),
            Arc::new(AtomicU64::new(0)),
        )
    }

    #[test]
    fn append_commit_replay_round_trips() {
        let path = tmp("roundtrip");
        let (policy, retries) = retry();
        let mut wal: Wal<u64, u64> =
            Wal::create(&RealIo, &path, FsyncPolicy::Always, policy, retries).unwrap();
        wal.append(&WalOp::Insert(1, 10));
        wal.append(&WalOp::Remove(2));
        wal.append(&WalOp::InsertMany(&[(3, 30), (4, 40)]));
        assert!(wal.commit().unwrap());
        assert!(wal.bytes() > 0);
        assert!(!wal.has_buffered());
        drop(wal);

        let replayed = replay::<u64, u64>(&RealIo, &path).unwrap();
        assert!(!replayed.truncated);
        assert_eq!(
            replayed.ops,
            vec![
                ReplayOp::Insert(1, 10),
                ReplayOp::Remove(2),
                ReplayOp::InsertMany(vec![(3, 30), (4, 40)]),
            ]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_truncates_to_record_boundary() {
        let path = tmp("torn");
        let (policy, retries) = retry();
        let mut wal: Wal<u64, u64> =
            Wal::create(&RealIo, &path, FsyncPolicy::Off, policy, retries).unwrap();
        for i in 0..10u64 {
            wal.append(&WalOp::Insert(i, i));
        }
        wal.commit().unwrap();
        drop(wal);

        let full = std::fs::read(&path).unwrap();
        // Tear mid-way through the last record.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let replayed = replay::<u64, u64>(&RealIo, &path).unwrap();
        assert!(replayed.truncated);
        assert_eq!(replayed.ops.len(), 9);

        // Reopen for append at the reported boundary, add a record,
        // and the log is whole again.
        let (policy, retries) = retry();
        let mut wal: Wal<u64, u64> = Wal::open_append(
            &RealIo,
            &path,
            FsyncPolicy::Always,
            replayed.valid_len,
            policy,
            retries,
        )
        .unwrap();
        wal.append(&WalOp::Insert(99, 99));
        wal.commit().unwrap();
        drop(wal);
        let replayed = replay::<u64, u64>(&RealIo, &path).unwrap();
        assert!(!replayed.truncated);
        assert_eq!(replayed.ops.len(), 10);
        assert_eq!(*replayed.ops.last().unwrap(), ReplayOp::Insert(99, 99));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn every_n_policy_syncs_on_schedule() {
        let path = tmp("everyn");
        let (policy, retries) = retry();
        let mut wal: Wal<u64, u64> =
            Wal::create(&RealIo, &path, FsyncPolicy::EveryN(3), policy, retries).unwrap();
        wal.append(&WalOp::Insert(1, 1));
        assert!(!wal.commit().unwrap());
        wal.append(&WalOp::Insert(2, 2));
        assert!(!wal.commit().unwrap());
        wal.append(&WalOp::Insert(3, 3));
        assert!(wal.commit().unwrap());
        // Counter reset after the fsync.
        wal.append(&WalOp::Insert(4, 4));
        assert!(!wal.commit().unwrap());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn take_buffer_surrenders_decodable_unflushed_records() {
        let path = tmp("takebuf");
        let io = FaultIo::quiet();
        let (policy, retries) = retry();
        let mut wal: Wal<u64, u64> =
            Wal::create(&io, &path, FsyncPolicy::Always, policy, retries).unwrap();
        wal.append(&WalOp::Insert(1, 10));
        wal.append(&WalOp::Remove(2));
        // Tear the flush mid-buffer (the short write's follow-up
        // ENOSPC fails the resume): the records are marooned...
        io.fail_nth(IoOp::Write, "wal.000000", 1, InjectKind::ShortWrite, false);
        assert!(wal.commit().is_err());
        assert!(wal.has_buffered());
        // ...but the handoff recovers every one of them, decodable.
        let pending = wal.take_buffer();
        assert!(!wal.has_buffered());
        assert_eq!(
            decode_records::<u64, u64>(&pending),
            vec![ReplayOp::Insert(1, 10), ReplayOp::Remove(2)]
        );
        // A torn tail in the stream is dropped silently, prefix kept.
        let mut torn = pending.clone();
        torn.truncate(pending.len() - 3);
        assert_eq!(
            decode_records::<u64, u64>(&torn),
            vec![ReplayOp::Insert(1, 10)]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_header_is_an_error_not_a_truncation() {
        let path = tmp("foreign");
        std::fs::write(&path, b"not a wal at all").unwrap();
        assert!(replay::<u64, u64>(&RealIo, &path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn transient_commit_faults_are_absorbed_by_retry() {
        let path = tmp("transient");
        let io = FaultIo::quiet();
        let (policy, retries) = retry();
        let mut wal: Wal<u64, u64> = Wal::create(
            &io,
            &path,
            FsyncPolicy::Always,
            policy,
            Arc::clone(&retries),
        )
        .unwrap();
        io.fail_nth(IoOp::Write, "wal.000000", 1, InjectKind::Transient, false);
        io.fail_nth(IoOp::Fsync, "wal.000000", 1, InjectKind::Transient, false);
        wal.append(&WalOp::Insert(5, 50));
        assert!(wal.commit().unwrap());
        assert!(retries.load(std::sync::atomic::Ordering::Relaxed) >= 2);
        let replayed = replay::<u64, u64>(&RealIo, &path).unwrap();
        assert_eq!(replayed.ops, vec![ReplayOp::Insert(5, 50)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_commit_keeps_suffix_and_resumes_without_duplicates() {
        let path = tmp("resume");
        let io = FaultIo::quiet();
        let (policy, retries) = retry();
        let mut wal: Wal<u64, u64> =
            Wal::create(&io, &path, FsyncPolicy::Always, policy, retries).unwrap();
        wal.append(&WalOp::Insert(1, 1));
        wal.append(&WalOp::Insert(2, 2));
        // Tear the first flush mid-buffer, then die once more.
        io.fail_nth(IoOp::Write, "wal.000000", 1, InjectKind::ShortWrite, false);
        assert!(wal.commit().is_err());
        assert!(wal.has_buffered());
        // The next commit resumes from the torn byte: the healed log
        // holds each record exactly once.
        assert!(wal.commit().unwrap());
        assert!(!wal.has_buffered());
        let replayed = replay::<u64, u64>(&RealIo, &path).unwrap();
        assert!(!replayed.truncated);
        assert_eq!(
            replayed.ops,
            vec![ReplayOp::Insert(1, 1), ReplayOp::Insert(2, 2)]
        );
        std::fs::remove_file(&path).unwrap();
    }
}
