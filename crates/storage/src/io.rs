//! The injectable I/O boundary.
//!
//! Everything the durability layer does to a disk goes through
//! [`StorageIo`] — file creation, appends, whole-file reads, renames,
//! deletes, directory listing, and both file- and directory-level
//! syncs. Production uses [`RealIo`] (a zero-cost passthrough to
//! `std::fs`); the chaos battery swaps in
//! [`FaultIo`](crate::FaultIo), which implements the same trait but
//! follows a seeded fault schedule.
//!
//! The trait speaks raw [`std::io::Result`]; classification into
//! [`StorageError`](crate::StorageError) (transient vs permanent, which
//! op, which path) happens at the call site in `wal`/`durable`, where
//! the operation context is known.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// An open, writable file handle as the storage layer sees it: a byte
/// sink plus `fdatasync`. Short writes are legal (exactly as for
/// [`std::io::Write::write`]) — callers loop, which is what lets the
/// fault harness model torn writes.
///
/// `Send + Sync` so a `DurableIndex` holding one (behind its shard
/// `RwLock`) stays shareable across service worker threads.
pub trait IoFile: Send + Sync {
    /// Writes a prefix of `buf`, returning how many bytes were
    /// accepted.
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize>;

    /// Flushes file *data* to stable storage (`fdatasync`).
    fn sync_data(&mut self) -> std::io::Result<()>;
}

/// The pluggable filesystem: every durable-path operation in this
/// crate, and nothing else.
pub trait StorageIo: Send + Sync + std::fmt::Debug {
    /// Creates (or truncates) `path` for writing.
    fn create(&self, path: &Path) -> std::io::Result<Box<dyn IoFile>>;

    /// Opens an existing file for appending, first truncating it to
    /// `valid_len` (recovery discards a torn tail this way before new
    /// records go after the valid prefix).
    fn open_append(&self, path: &Path, valid_len: u64) -> std::io::Result<Box<dyn IoFile>>;

    /// Reads the whole file at `path` into memory.
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>>;

    /// Atomically renames `from` to `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()>;

    /// Deletes the file at `path`.
    fn remove_file(&self, path: &Path) -> std::io::Result<()>;

    /// Creates `path` and any missing parents.
    fn create_dir_all(&self, path: &Path) -> std::io::Result<()>;

    /// The file names (final components) inside directory `path`.
    fn read_dir_names(&self, path: &Path) -> std::io::Result<Vec<String>>;

    /// `fsync` on the directory itself, making completed renames and
    /// creates durable.
    fn sync_dir(&self, path: &Path) -> std::io::Result<()>;
}

/// The production [`StorageIo`]: a direct passthrough to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl IoFile for File {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        Write::write(self, buf)
    }

    fn sync_data(&mut self) -> std::io::Result<()> {
        File::sync_data(self)
    }
}

impl StorageIo for RealIo {
    fn create(&self, path: &Path) -> std::io::Result<Box<dyn IoFile>> {
        Ok(Box::new(File::create(path)?))
    }

    fn open_append(&self, path: &Path, valid_len: u64) -> std::io::Result<Box<dyn IoFile>> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok(Box::new(file))
    }

    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        File::open(path)?.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn read_dir_names(&self, path: &Path) -> std::io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(path)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        Ok(names)
    }

    fn sync_dir(&self, path: &Path) -> std::io::Result<()> {
        File::open(path)?.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("fiting-io-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_io_round_trip() {
        let dir = scratch("round-trip");
        let io = RealIo;
        let p = dir.join("a.bin");
        let mut f = io.create(&p).unwrap();
        assert_eq!(f.write(b"hello").unwrap(), 5);
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(io.read(&p).unwrap(), b"hello");

        // Append after truncating the torn tail.
        let mut f = io.open_append(&p, 4).unwrap();
        assert_eq!(f.write(b"!").unwrap(), 1);
        drop(f);
        assert_eq!(io.read(&p).unwrap(), b"hell!");

        let q = dir.join("b.bin");
        io.rename(&p, &q).unwrap();
        io.sync_dir(&dir).unwrap();
        let names = io.read_dir_names(&dir).unwrap();
        assert_eq!(names, vec!["b.bin".to_string()]);
        io.remove_file(&q).unwrap();
        assert!(io.read(&q).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
