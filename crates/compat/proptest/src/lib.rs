//! Offline stand-in for the `proptest` property-testing crate.
//!
//! This build environment has no network access to crates.io, so the
//! workspace vendors the **API subset its tests use**: the `proptest!`
//! macro, `Strategy` with `prop_map`, `any`, range and tuple
//! strategies, `prop_oneof!`, `collection::{vec, btree_set}`, and the
//! `prop_assert*` macros. Swap this path dependency for the real
//! `proptest = "1"` in `[workspace.dependencies]` when a registry is
//! reachable; no test file needs to change.
//!
//! Differences from the real crate that matter:
//!
//! * **No shrinking.** A failing case reports the sampled inputs via
//!   the ordinary `assert!` panic message but does not minimize them.
//! * **Deterministic seeds.** Case `i` of every test samples from a
//!   generator seeded with `i`, so failures reproduce exactly across
//!   runs (the real crate defaults to OS randomness + a regression
//!   file).

#![forbid(unsafe_code)]

/// Test-case generation state: a small deterministic PRNG
/// (SplitMix64-seeded xoshiro256++).
pub mod test_runner {
    /// Per-case random source.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Generator for the `case`-th invocation of a property.
        #[must_use]
        pub fn for_case(case: u64) -> Self {
            let mut state = case.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0xDEAD_BEEF_CAFE_F00D;
            TestRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }

        /// Uniform draw below `n` (Lemire multiply-shift).
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }
}

/// Strategies: composable recipes for sampling test inputs.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Value`.
    ///
    /// Object-safe (`prop_map`/`boxed` carry `Self: Sized`), so
    /// `Box<dyn Strategy<Value = T>>` works for heterogeneous unions.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Full-range strategy for a primitive, returned by
    /// [`any`](crate::arbitrary::any).
    pub struct Any<T> {
        pub(crate) _ty: std::marker::PhantomData<T>,
    }

    macro_rules! impl_any {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation)]
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_any!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// Weighted union of strategies, built by `prop_oneof!`.
    pub struct OneOf<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> OneOf<T> {
        /// Builds from `(weight, strategy)` arms.
        #[must_use]
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof needs positive total weight");
            OneOf { arms, total }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, strat) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return strat.sample(rng);
                }
                pick -= w;
            }
            unreachable!("weights sum covered above")
        }
    }
}

/// `any::<T>()` — the full-range strategy for a primitive.
pub mod arbitrary {
    use crate::strategy::Any;

    /// Full-range strategy for `T`.
    #[must_use]
    pub fn any<T>() -> Any<T> {
        Any {
            _ty: std::marker::PhantomData,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Vec of `size` elements drawn from `element`, `size` drawn from
    /// the given range.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Output of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// BTreeSet with *up to* the sampled number of elements (duplicates
    /// collapse, as in the real crate).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// Output of [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a test file conventionally glob-imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Per-test configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Runs each property `cases` times.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// Weighted (`w => strat`) or uniform union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strat),+)
    };
}

/// Assert inside a property (no shrinking in the stand-in; plain
/// `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each named function runs `cases` times
/// with inputs sampled from its strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                for case in 0..u64::from(config.cases) {
                    let mut proptest_rng = $crate::test_runner::TestRng::for_case(case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&$strat, &mut proptest_rng);
                    )+
                    $body
                }
            }
        )+
    };
    ($($rest:tt)+) => {
        $crate::proptest! {
            #![proptest_config($crate::prelude::ProptestConfig::default())]
            $($rest)+
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn square(x: u32) -> u64 {
        u64::from(x) * u64::from(x)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn squares_are_monotone(a in 0u32..1000, b in 0u32..1000) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(square(lo) <= square(hi));
        }

        #[test]
        fn oneof_and_collections_compose(
            ops in crate::collection::vec(
                prop_oneof![
                    3 => (any::<u16>(), any::<u16>()).prop_map(|(a, b)| u32::from(a) + u32::from(b)),
                    1 => (0u32..10).prop_map(|x| x),
                ],
                0..50,
            ),
            set in crate::collection::btree_set(0u32..100, 1..20),
        ) {
            prop_assert!(ops.len() < 50);
            prop_assert!(set.len() < 20);
            prop_assert!(set.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case(7);
        let mut b = crate::test_runner::TestRng::for_case(7);
        prop_assert_eq!(a.next_u64(), b.next_u64());
    }
}
