//! Offline stand-in for the `parking_lot` crate.
//!
//! This build environment has no network access to crates.io, so the
//! workspace vendors the **API subset it actually uses** — `RwLock` and
//! `Mutex` with infallible, non-poisoning guards — implemented over
//! `std::sync`. Swap this path dependency for the real `parking_lot =
//! "0.12"` in `[workspace.dependencies]` when a registry is reachable;
//! no call site needs to change.
//!
//! Semantic differences from the real crate that matter here:
//!
//! * Poisoning is ignored (the real `parking_lot` has no poisoning
//!   either): a panic while holding a guard does not wedge the lock.
//! * Fairness/eventual-fairness guarantees are whatever `std::sync`
//!   provides on the platform.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A reader-writer lock with non-poisoning guards.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Shared read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A mutual-exclusion lock with a non-poisoning guard.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn rwlock_round_trip() {
        let lock = RwLock::new(5u64);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
        assert_eq!(lock.into_inner(), 6);
    }

    #[test]
    fn rwlock_shared_across_threads() {
        let lock = Arc::new(RwLock::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let lock = Arc::clone(&lock);
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    *lock.write() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.read(), 4000);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
