//! Offline stand-in for the `parking_lot` crate.
//!
//! This build environment has no network access to crates.io, so the
//! workspace vendors the **API subset it actually uses** — `RwLock`,
//! `Mutex`, and `Condvar` with infallible, non-poisoning guards —
//! implemented over `std::sync`. Swap this path dependency for the real
//! `parking_lot = "0.12"` in `[workspace.dependencies]` when a registry
//! is reachable; no call site needs to change.
//!
//! Semantic differences from the real crate that matter here:
//!
//! * Poisoning is ignored (the real `parking_lot` has no poisoning
//!   either): a panic while holding a guard does not wedge the lock.
//! * Fairness/eventual-fairness guarantees are whatever `std::sync`
//!   provides on the platform.
//! * [`Condvar::notify_one`] / [`notify_all`](Condvar::notify_all)
//!   return `()` rather than the real crate's woken-thread counts
//!   (`std::sync::Condvar` does not report them); no call site in this
//!   workspace consumes the count.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A reader-writer lock with non-poisoning guards.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Shared read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A mutual-exclusion lock with a non-poisoning guard.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// Guard returned by [`Mutex::lock`].
///
/// Internally the `std` guard sits in an `Option` so [`Condvar::wait`]
/// can move it out (the `std` wait API takes the guard by value) and
/// put the reacquired guard back — invisible to callers, who always
/// observe a held lock.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    fn guard(&self) -> &std::sync::MutexGuard<'a, T> {
        self.inner
            .as_ref()
            .expect("guard invariant: lock held outside Condvar::wait")
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard()
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard invariant: lock held outside Condvar::wait")
    }
}

/// Whether a [`Condvar::wait_for`] returned because the timeout
/// elapsed, mirroring `parking_lot::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` when the wait ended by timeout rather than notification.
    #[must_use]
    pub fn timed_out(self) -> bool {
        self.timed_out
    }
}

/// A condition variable for use with [`Mutex`], mirroring
/// `parking_lot::Condvar`: waits take the guard by `&mut` and the
/// guard observably never leaves the caller's hands.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    #[must_use]
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing the guarded lock for
    /// the duration of the wait and reacquiring it before returning.
    /// Spurious wakeups are possible, exactly as with `std`.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let held = guard
            .inner
            .take()
            .expect("guard invariant: lock held outside Condvar::wait");
        guard.inner = Some(
            self.inner
                .wait(held)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Like [`wait`](Self::wait), but gives up after `timeout`. The
    /// lock is reacquired before returning either way.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let held = guard
            .inner
            .take()
            .expect("guard invariant: lock held outside Condvar::wait");
        let (reacquired, result) = self
            .inner
            .wait_timeout(held, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiter (if any).
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn rwlock_round_trip() {
        let lock = RwLock::new(5u64);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
        assert_eq!(lock.into_inner(), 6);
    }

    #[test]
    fn rwlock_shared_across_threads() {
        let lock = Arc::new(RwLock::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let lock = Arc::clone(&lock);
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    *lock.write() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.read(), 4000);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waker = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (lock, cv) = &*waker;
            *lock.lock() = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        assert!(*ready);
        drop(ready);
        h.join().unwrap();
        // The guard is fully functional after a wait round trip.
        assert!(*lock.lock());
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let lock = Mutex::new(0u32);
        let cv = Condvar::new();
        let mut guard = lock.lock();
        let result = cv.wait_for(&mut guard, std::time::Duration::from_millis(5));
        assert!(result.timed_out());
        // Lock reacquired: mutation through the same guard still works.
        *guard += 1;
        drop(guard);
        assert_eq!(*lock.lock(), 1);
    }

    #[test]
    fn condvar_notify_all_wakes_every_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let pair = Arc::clone(&pair);
            handles.push(thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut go = lock.lock();
                while !*go {
                    cv.wait(&mut go);
                }
            }));
        }
        thread::sleep(std::time::Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        for h in handles {
            h.join().unwrap();
        }
    }
}
