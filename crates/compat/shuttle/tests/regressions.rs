//! Self-tests for the model checker: seeded known-bug regressions that
//! exploration must catch within a bounded schedule budget, plus
//! schedule-replay determinism. These prove the checker *fires* — the
//! workspace's real concurrency models live with the crates they model.
#![cfg(feature = "model")]

use shuttle::atomic::{AtomicBool, AtomicU64, Ordering};
use shuttle::sync::{Condvar, Mutex, RwLock};
use shuttle::{model, thread};
use std::sync::Arc;

/// A deliberately broken two-lock protocol: one task takes A then B,
/// the other B then A. DFS must find the deadlock interleaving.
fn broken_lock_order() {
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    let t = thread::spawn(move || {
        let ga = a2.lock();
        let mut gb = b2.lock();
        *gb += *ga;
    });
    let gb = b.lock();
    let mut ga = a.lock();
    *ga += *gb;
    drop((ga, gb));
    t.join().unwrap();
}

#[test]
fn catches_lock_order_deadlock() {
    let report = model::explore(broken_lock_order, model::DEFAULT_ITERATIONS);
    let failure = report.failure.expect("DFS must find the A/B-B/A deadlock");
    assert!(
        failure.message.contains("deadlock"),
        "unexpected failure kind: {}",
        failure.message
    );
    assert!(
        report.iterations <= model::DEFAULT_ITERATIONS,
        "deadlock must surface within the bounded budget"
    );
}

#[test]
fn fixed_lock_order_is_clean() {
    // Same scenario with both tasks locking in A-then-B order: DFS must
    // exhaust the (small) schedule space without finding anything.
    let report = model::explore(
        || {
            let a = Arc::new(Mutex::new(0u32));
            let b = Arc::new(Mutex::new(0u32));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || {
                let ga = a2.lock();
                let mut gb = b2.lock();
                *gb += *ga;
            });
            let ga = a.lock();
            let mut gb = b.lock();
            *gb += *ga;
            drop((gb, ga));
            t.join().unwrap();
        },
        model::DEFAULT_ITERATIONS,
    );
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete, "schedule space should be exhaustible");
}

/// The classic publish bug: payload then flag, both stored `Relaxed`.
/// Store buffers commit per location, so a reader can observe the flag
/// flip while the payload store is still buffered — exactly the
/// reordering a missing `Release` on the flag permits.
fn missed_release_store() {
    let payload = Arc::new(AtomicU64::new(0));
    let ready = Arc::new(AtomicBool::new(false));
    let (p2, r2) = (Arc::clone(&payload), Arc::clone(&ready));
    let t = thread::spawn(move || {
        p2.store(42, Ordering::Relaxed);
        // BUG: the flag needs Ordering::Release to publish the payload.
        r2.store(true, Ordering::Relaxed);
        // Keep the task alive so exit does not flush the buffer before
        // the reader gets a chance to observe the stale payload.
        for _ in 0..2 {
            thread::yield_now();
        }
    });
    if ready.load(Ordering::Acquire) {
        assert_eq!(payload.load(Ordering::Acquire), 42, "stale payload");
    }
    t.join().unwrap();
}

#[test]
fn catches_missed_release_store() {
    let report = model::explore(missed_release_store, model::DEFAULT_ITERATIONS);
    let failure = report
        .failure
        .expect("store-buffer model must expose the relaxed publish");
    assert!(
        failure.message.contains("stale payload"),
        "unexpected failure kind: {}",
        failure.message
    );
}

#[test]
fn release_store_publish_is_clean() {
    // The corrected protocol: payload Relaxed, flag Release. The
    // Release store commits the task's whole buffer, so a reader that
    // observes `ready == true` must observe the payload.
    let report = model::explore(
        || {
            let payload = Arc::new(AtomicU64::new(0));
            let ready = Arc::new(AtomicBool::new(false));
            let (p2, r2) = (Arc::clone(&payload), Arc::clone(&ready));
            let t = thread::spawn(move || {
                p2.store(42, Ordering::Relaxed);
                r2.store(true, Ordering::Release);
                for _ in 0..2 {
                    thread::yield_now();
                }
            });
            if ready.load(Ordering::Acquire) {
                assert_eq!(payload.load(Ordering::Acquire), 42, "stale payload");
            }
            t.join().unwrap();
        },
        model::DEFAULT_ITERATIONS,
    );
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

#[test]
fn lost_wakeup_is_caught_and_timeout_rescues_it() {
    // Classic lost wakeup: the notifier does not hold the mutex while
    // setting the flag, so notify can land between the waiter's flag
    // check and its park. An *untimed* wait then deadlocks...
    let lost_wakeup = |timed: bool| {
        move || {
            let state = Arc::new((Mutex::new(false), Condvar::new()));
            let s2 = Arc::clone(&state);
            let t = thread::spawn(move || {
                *s2.0.lock() = true;
                s2.1.notify_one();
            });
            let mut done = state.0.lock();
            while !*done {
                if timed {
                    let _timeout = state
                        .1
                        .wait_for(&mut done, std::time::Duration::from_millis(1));
                } else {
                    state.1.wait(&mut done);
                }
            }
            drop(done);
            t.join().unwrap();
        }
    };
    // The untimed variant is actually *correct* here (flag is written
    // under the mutex) — this pins down that wait/notify work at all.
    let report = model::explore(lost_wakeup(false), model::DEFAULT_ITERATIONS);
    assert!(report.failure.is_none(), "{:?}", report.failure);
    // And the timed variant additionally explores timeout firings.
    let report = model::explore(lost_wakeup(true), model::DEFAULT_ITERATIONS);
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

#[test]
fn notify_without_flag_deadlocks_untimed_but_not_timed() {
    // A *really* lost wakeup: notify fires before the waiter parks and
    // no predicate flag exists. Untimed wait must deadlock in some
    // schedule; a timed wait must always be rescued by its timeout.
    let body = |timed: bool| {
        move || {
            let state = Arc::new((Mutex::new(()), Condvar::new()));
            let s2 = Arc::clone(&state);
            let t = thread::spawn(move || s2.1.notify_one());
            let mut guard = state.0.lock();
            if timed {
                let _timeout = state
                    .1
                    .wait_for(&mut guard, std::time::Duration::from_millis(1));
            } else {
                state.1.wait(&mut guard);
            }
            drop(guard);
            t.join().unwrap();
        }
    };
    let report = model::explore(body(false), model::DEFAULT_ITERATIONS);
    let failure = report.failure.expect("early notify must strand the waiter");
    assert!(failure.message.contains("deadlock"), "{}", failure.message);
    let report = model::explore(body(true), model::DEFAULT_ITERATIONS);
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

#[test]
fn rwlock_writer_starvation_free_and_exclusive() {
    let report = model::explore(
        || {
            let lock = Arc::new(RwLock::new(0u64));
            let l2 = Arc::clone(&lock);
            let l3 = Arc::clone(&lock);
            let w = thread::spawn(move || *l2.write() += 1);
            let r = thread::spawn(move || {
                let v = *l3.read();
                assert!(v == 0 || v == 1, "torn read: {v}");
            });
            w.join().unwrap();
            r.join().unwrap();
            assert_eq!(*lock.read(), 1);
        },
        model::DEFAULT_ITERATIONS,
    );
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
}

#[test]
fn replay_reproduces_the_recorded_failure() {
    let report = model::explore(broken_lock_order, model::DEFAULT_ITERATIONS);
    let failure = report.failure.expect("deadlock expected");
    // Replaying the recorded schedule must reproduce the exact failure,
    // deterministically, every time.
    for _ in 0..3 {
        let replayed = model::replay(broken_lock_order, &failure.schedule);
        let rf = replayed.failure.expect("replay must reproduce the failure");
        assert_eq!(rf.message, failure.message);
        assert_eq!(rf.schedule, failure.schedule);
    }
}

#[test]
fn random_walks_are_deterministic_per_seed() {
    let run = |seed| {
        let report = model::explore_random(missed_release_store, seed, 2_000);
        report.failure.map(|f| (f.message, f.schedule))
    };
    let a = run(7);
    assert!(
        a.is_some(),
        "random walk should also find the relaxed publish"
    );
    assert_eq!(a, run(7), "same seed must reproduce the same outcome");
}

#[test]
fn dfs_exhausts_small_spaces_and_counts_iterations() {
    // Two tasks, one lock each: the space is tiny and must be marked
    // complete after more than one interleaving.
    let report = model::explore(
        || {
            let n = Arc::new(Mutex::new(0u32));
            let n2 = Arc::clone(&n);
            let t = thread::spawn(move || *n2.lock() += 1);
            *n.lock() += 1;
            t.join().unwrap();
            assert_eq!(*n.lock(), 2);
        },
        model::DEFAULT_ITERATIONS,
    );
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
    assert!(report.iterations > 1, "must explore more than one schedule");
}
