//! Instrumented atomic stand-ins (`AtomicU64` / `AtomicUsize` /
//! `AtomicBool`) with `std::sync::atomic` signatures.
//!
//! Under the model, every access is a scheduler decision point, and
//! `Ordering::Relaxed` stores park in the storing task's store buffer —
//! other tasks may observe the pre-store value until the buffer commits
//! (at a `Release`-or-stronger store, an RMW, or task exit). That is
//! the mechanism that lets [`crate::model::check`] catch
//! publish-without-release bugs. Without the `model` feature these are
//! plain re-exports of `std`'s atomics.

pub use std::sync::atomic::Ordering;

#[cfg(not(feature = "model"))]
pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};

#[cfg(feature = "model")]
use crate::runtime;
#[cfg(feature = "model")]
use std::sync::OnceLock;

/// Declares one instrumented atomic type over the shared `u64`-backed
/// runtime cell.
#[cfg(feature = "model")]
macro_rules! instrumented_atomic {
    ($name:ident, $ty:ty, $to:expr, $from:expr) => {
        /// Instrumented atomic: every access is a scheduler decision
        /// point, and `Relaxed` stores buffer per task (see module
        /// docs).
        #[derive(Debug)]
        pub struct $name {
            initial: u64,
            id: OnceLock<usize>,
        }

        impl $name {
            /// Creates a new atomic holding `value`.
            #[must_use]
            pub fn new(value: $ty) -> Self {
                $name {
                    initial: $to(value),
                    id: OnceLock::new(),
                }
            }

            fn id(&self) -> usize {
                runtime::lazy_id(&self.id, || runtime::atomic_register(self.initial))
            }

            /// Loads the value. Under the model the load may observe a
            /// stale value while another task's `Relaxed` stores are
            /// still buffered — which of the visible values it observes
            /// is a scheduling choice.
            #[must_use]
            pub fn load(&self, _order: Ordering) -> $ty {
                $from(runtime::atomic_load(self.id()))
            }

            /// Stores `value`. `Relaxed` buffers in the storing task;
            /// `Release` and stronger publish the task's whole buffer.
            pub fn store(&self, value: $ty, order: Ordering) {
                // ordering: inspects the *caller's* ordering — Relaxed
                // buffers in the store buffer, stronger commits.
                runtime::atomic_store(self.id(), $to(value), matches!(order, Ordering::Relaxed));
            }

            /// Swaps in `value`, returning the previous value.
            pub fn swap(&self, value: $ty, _order: Ordering) -> $ty {
                $from(runtime::atomic_rmw(self.id(), |_| $to(value)))
            }

            /// Stores `new` iff the current value equals `current`;
            /// returns the previous value as `Ok` (stored) / `Err`.
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$ty, $ty> {
                runtime::atomic_compare_exchange(self.id(), $to(current), $to(new))
                    .map($from)
                    .map_err($from)
            }
        }
    };
}

#[cfg(feature = "model")]
instrumented_atomic!(AtomicU64, u64, |v: u64| v, |v: u64| v);
#[cfg(feature = "model")]
instrumented_atomic!(AtomicUsize, usize, |v: usize| v as u64, |v: u64| v as usize);
#[cfg(feature = "model")]
instrumented_atomic!(AtomicBool, bool, |v: bool| u64::from(v), |v: u64| v != 0);

#[cfg(feature = "model")]
impl AtomicU64 {
    /// Adds `value`, returning the previous value. RMWs always act on
    /// the latest value (all buffers for this location commit first).
    pub fn fetch_add(&self, value: u64, _order: Ordering) -> u64 {
        runtime::atomic_rmw(self.id(), |v| v.wrapping_add(value))
    }

    /// Subtracts `value`, returning the previous value.
    pub fn fetch_sub(&self, value: u64, _order: Ordering) -> u64 {
        runtime::atomic_rmw(self.id(), |v| v.wrapping_sub(value))
    }

    /// Stores the maximum of the current value and `value`, returning
    /// the previous value.
    pub fn fetch_max(&self, value: u64, _order: Ordering) -> u64 {
        runtime::atomic_rmw(self.id(), |v| v.max(value))
    }
}

#[cfg(feature = "model")]
impl AtomicUsize {
    /// Adds `value`, returning the previous value.
    pub fn fetch_add(&self, value: usize, _order: Ordering) -> usize {
        runtime::atomic_rmw(self.id(), |v| v.wrapping_add(value as u64)) as usize
    }

    /// Subtracts `value`, returning the previous value.
    pub fn fetch_sub(&self, value: usize, _order: Ordering) -> usize {
        runtime::atomic_rmw(self.id(), |v| v.wrapping_sub(value as u64)) as usize
    }
}
