//! Instrumented `Mutex` / `RwLock` / `Condvar` stand-ins (parking_lot
//! shape: infallible, non-poisoning guards; condvar waits take the
//! guard by `&mut`).
//!
//! With the `model` feature every acquire, release, wait, and notify is
//! a scheduler decision point; without it these are thin `std` wrappers
//! with identical signatures.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

#[cfg(feature = "model")]
use crate::runtime;
#[cfg(feature = "model")]
use std::sync::OnceLock;

/// Whether a [`Condvar::wait_for`] returned because the timeout fired
/// rather than a notification arriving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` when the wait ended by timeout.
    #[must_use]
    pub fn timed_out(self) -> bool {
        self.timed_out
    }
}

// =====================================================================
// Instrumented implementations (feature "model")
// =====================================================================

/// A mutual-exclusion lock whose acquire/release are scheduler decision
/// points under the model.
#[cfg(feature = "model")]
pub struct Mutex<T> {
    cell: std::sync::Mutex<T>,
    id: OnceLock<usize>,
}

#[cfg(feature = "model")]
impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            cell: std::sync::Mutex::new(value),
            id: OnceLock::new(),
        }
    }

    fn id(&self) -> usize {
        runtime::lazy_id(&self.id, runtime::mutex_register)
    }

    /// Acquires the lock; under the model, contention parks the task in
    /// the scheduler (the inner `std` lock is always uncontended).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let id = self.id();
        runtime::mutex_lock(id);
        MutexGuard {
            lock: self,
            id,
            inner: Some(self.cell.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.cell
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// Guard returned by [`Mutex::lock`]. The inner `std` guard sits in an
/// `Option` so [`Condvar::wait`] can release and reacquire it around
/// the park; callers always observe a held lock.
#[cfg(feature = "model")]
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    id: usize,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

#[cfg(feature = "model")]
impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard invariant: lock held outside Condvar::wait")
    }
}

#[cfg(feature = "model")]
impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard invariant: lock held outside Condvar::wait")
    }
}

#[cfg(feature = "model")]
impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the data lock before the scheduler bookkeeping so a
        // woken task's (uncontended) inner acquire cannot miss it.
        drop(self.inner.take());
        runtime::mutex_unlock(self.id);
    }
}

/// A reader-writer lock whose acquires/releases are scheduler decision
/// points under the model.
#[cfg(feature = "model")]
pub struct RwLock<T> {
    cell: std::sync::RwLock<T>,
    id: OnceLock<usize>,
}

#[cfg(feature = "model")]
impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            cell: std::sync::RwLock::new(value),
            id: OnceLock::new(),
        }
    }

    fn id(&self) -> usize {
        runtime::lazy_id(&self.id, runtime::rwlock_register)
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let id = self.id();
        runtime::rwlock_read(id);
        RwLockReadGuard {
            id,
            inner: Some(self.cell.read().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let id = self.id();
        runtime::rwlock_write(id);
        RwLockWriteGuard {
            id,
            inner: Some(self.cell.write().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.cell
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// Shared read guard returned by [`RwLock::read`].
#[cfg(feature = "model")]
pub struct RwLockReadGuard<'a, T> {
    id: usize,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
}

#[cfg(feature = "model")]
impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("read guard holds the lock")
    }
}

#[cfg(feature = "model")]
impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        runtime::rwlock_read_unlock(self.id);
    }
}

/// Exclusive write guard returned by [`RwLock::write`].
#[cfg(feature = "model")]
pub struct RwLockWriteGuard<'a, T> {
    id: usize,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
}

#[cfg(feature = "model")]
impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("write guard holds the lock")
    }
}

#[cfg(feature = "model")]
impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("write guard holds the lock")
    }
}

#[cfg(feature = "model")]
impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        runtime::rwlock_write_unlock(self.id);
    }
}

/// A condition variable whose wait/notify are scheduler decision
/// points; timed waits explore the timeout firing as a schedule choice.
/// Spurious wakeups are not modeled.
#[cfg(feature = "model")]
pub struct Condvar {
    id: OnceLock<usize>,
}

#[cfg(feature = "model")]
impl Condvar {
    /// Creates a new condition variable.
    #[must_use]
    pub fn new() -> Self {
        Condvar {
            id: OnceLock::new(),
        }
    }

    fn id(&self) -> usize {
        runtime::lazy_id(&self.id, runtime::condvar_register)
    }

    /// Parks until notified, releasing the guarded lock for the
    /// duration and reacquiring it before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let cv = self.id();
        drop(guard.inner.take());
        let _ = runtime::condvar_wait(cv, guard.id, false);
        guard.inner = Some(
            guard
                .lock
                .cell
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Like [`wait`](Self::wait), but the scheduler may fire the
    /// timeout at any point instead of a notification arriving — both
    /// sides of every complete-vs-timeout race get explored. The
    /// `timeout` duration itself is ignored under the model.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let _ = timeout;
        let cv = self.id();
        drop(guard.inner.take());
        let timed_out = runtime::condvar_wait(cv, guard.id, true);
        guard.inner = Some(
            guard
                .lock
                .cell
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        WaitTimeoutResult { timed_out }
    }

    /// Wakes the first un-notified waiter (FIFO), if any.
    pub fn notify_one(&self) {
        runtime::condvar_notify(self.id(), false);
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        runtime::condvar_notify(self.id(), true);
    }
}

#[cfg(feature = "model")]
impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

// =====================================================================
// Passthrough implementations (feature "model" disabled)
// =====================================================================

/// A mutual-exclusion lock (passthrough: thin non-poisoning `std`
/// wrapper).
#[cfg(not(feature = "model"))]
pub struct Mutex<T> {
    cell: std::sync::Mutex<T>,
}

#[cfg(not(feature = "model"))]
impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            cell: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            lock: self,
            inner: Some(self.cell.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.cell
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// Guard returned by [`Mutex::lock`] (passthrough).
#[cfg(not(feature = "model"))]
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

#[cfg(not(feature = "model"))]
impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard invariant: lock held outside Condvar::wait")
    }
}

#[cfg(not(feature = "model"))]
impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard invariant: lock held outside Condvar::wait")
    }
}

/// A reader-writer lock (passthrough: thin non-poisoning `std`
/// wrapper).
#[cfg(not(feature = "model"))]
pub struct RwLock<T> {
    cell: std::sync::RwLock<T>,
}

#[cfg(not(feature = "model"))]
impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            cell: std::sync::RwLock::new(value),
        }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.cell.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.cell.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.cell
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable (passthrough over `std`).
#[cfg(not(feature = "model"))]
pub struct Condvar {
    inner: std::sync::Condvar,
}

#[cfg(not(feature = "model"))]
impl Condvar {
    /// Creates a new condition variable.
    #[must_use]
    pub fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let held = guard
            .inner
            .take()
            .expect("guard invariant: lock held outside Condvar::wait");
        guard.inner = Some(
            self.inner
                .wait(held)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let held = guard
            .inner
            .take()
            .expect("guard invariant: lock held outside Condvar::wait");
        let (reacquired, result) = self
            .inner
            .wait_timeout(held, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
        let _ = &guard.lock;
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiter (if any).
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(not(feature = "model"))]
impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl<T> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}
