//! Instrumented `thread::spawn` / `JoinHandle` stand-ins.
//!
//! Under the model, spawned closures become scheduler-controlled tasks
//! on their own (serialized) OS threads; `join` parks the joiner until
//! the task finishes. Without the `model` feature these re-export
//! `std::thread`.

#[cfg(not(feature = "model"))]
pub use std::thread::{spawn, yield_now, JoinHandle};

#[cfg(feature = "model")]
use crate::runtime;
#[cfg(feature = "model")]
use std::any::Any;
#[cfg(feature = "model")]
use std::sync::{Arc, Mutex, PoisonError};

/// Handle to a spawned model task; [`join`](JoinHandle::join) parks the
/// joiner until the task finishes and yields its result.
#[cfg(feature = "model")]
pub struct JoinHandle<T> {
    id: runtime::TaskId,
    slot: Arc<Mutex<Option<T>>>,
}

#[cfg(feature = "model")]
impl<T> JoinHandle<T> {
    /// Parks until the task finishes, then returns its result.
    ///
    /// Divergence from `std`: a panicking task aborts the whole model
    /// execution (the panic is the reported failure), so `join` never
    /// actually observes `Err` — the variant exists for signature
    /// parity.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        runtime::join_task(self.id);
        Ok(self
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("joined task stored its result"))
    }
}

/// Spawns a scheduler-controlled model task. The spawn itself is a
/// yield point: the child may run before the parent's next operation.
#[cfg(feature = "model")]
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let slot = Arc::new(Mutex::new(None));
    let slot2 = Arc::clone(&slot);
    let id = runtime::spawn_task(move || {
        let value = f();
        *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
    });
    JoinHandle { id, slot }
}

/// An explicit yield point: offers the scheduler a chance to move the
/// token, exactly like any instrumented operation.
#[cfg(feature = "model")]
pub fn yield_now() {
    runtime::schedule_point();
}
