//! The deterministic executor: serialized model tasks under a
//! token-passing scheduler.
//!
//! # How an execution works
//!
//! Every model task runs on its own OS thread, but **exactly one task
//! holds the token at a time** — all the others are parked on the
//! execution's condvar. Each instrumented operation (lock, atomic
//! access, notify, spawn, …) is a *yield point*: the task re-enters the
//! scheduler, which consults the [`Chooser`] to pick the next task from
//! the runnable set and hands the token over. A run of a model is
//! therefore fully determined by the chooser's decision sequence, which
//! is also recorded as the replayable `schedule` string.
//!
//! Blocking operations (contended lock, `Condvar::wait`, `join`) park
//! the task *outside* the runnable set until the corresponding wake
//! event; timed waits stay schedulable — the scheduler electing a timed
//! waiter **is** the timeout firing, so timeouts are explored like any
//! other interleaving. If no task is runnable and not all have
//! finished, the execution reports a deadlock with its schedule.
//!
//! # Weak-memory modeling
//!
//! Atomics are sequentially consistent *except* that a
//! `Ordering::Relaxed` store parks in the storing task's private store
//! buffer: the storing task reads its own buffered value, while other
//! tasks' loads face a scheduling choice — observe the committed value,
//! or commit some buffering task's pending stores *to that location*
//! first. Per-location commit is the point: two relaxed stores to
//! different locations may become visible in either order, so a reader
//! can observe a relaxed flag store *before* the data store that
//! preceded it — the publish-without-release class of bug. `Release`
//! (and stronger) stores, read-modify-writes, and task exit commit the
//! task's whole buffer in program order. This is far from a full C11
//! model, but it is exactly enough for that bug class.
//!
//! # Teardown
//!
//! The first failure (property panic, deadlock, replay divergence)
//! aborts the execution: every parked task is woken into a
//! [`ModelAbort`] panic that unwinds it off its thread; drop-path
//! bookkeeping (guard releases) stays non-panicking so unwinding never
//! double-panics. The runner then joins every OS thread and reports the
//! failure with its schedule.

use crate::chooser::Chooser;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex, OnceLock, PoisonError};

pub(crate) type TaskId = usize;

/// Hard per-iteration decision cap — a guard against accidentally
/// unbounded models (a spin loop with no progress), not a tuning knob.
const MAX_DECISIONS: usize = 1_000_000;

/// Timed-wait timeout firings allowed per execution. Without a bound, a
/// `wait_for` retry loop lets the scheduler fire the timeout forever
/// without ever running the would-be notifier — an infinite schedule.
/// Once the budget is spent, timed waiters park like untimed ones and
/// only notification wakes them, which forces the schedule toward the
/// other tasks.
const MAX_TIMEOUTS: usize = 8;

/// Sentinel panic payload used to unwind tasks during teardown. Never
/// reported as a model failure.
struct ModelAbort;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// Eligible for the token.
    Runnable,
    /// Parked until an explicit wake event (lock release, notify,
    /// target task finishing).
    Blocked,
    /// Parked in a timed `Condvar` wait: still schedulable, and being
    /// scheduled without a notification is the timeout firing.
    TimedWait,
    /// Ran to completion (or unwound during teardown).
    Finished,
}

struct MutexSt {
    held_by: Option<TaskId>,
    waiters: Vec<TaskId>,
}

struct RwSt {
    writer: Option<TaskId>,
    readers: Vec<TaskId>,
    waiters: Vec<TaskId>,
}

struct CvWaiter {
    task: TaskId,
    notified: bool,
}

/// A failure discovered during an execution: what went wrong, plus the
/// decision sequence that reaches it.
#[derive(Debug, Clone)]
pub(crate) struct RawFailure {
    pub(crate) message: String,
    pub(crate) schedule: String,
}

struct ExecState {
    tasks: Vec<Status>,
    joiners: Vec<Vec<TaskId>>,
    active: Option<TaskId>,
    mutexes: Vec<MutexSt>,
    rwlocks: Vec<RwSt>,
    condvars: Vec<Vec<CvWaiter>>,
    /// Committed (globally visible) value per registered atomic.
    atomics: Vec<u64>,
    /// Per-task store buffer: pending `Relaxed` stores in program
    /// order, not yet visible to other tasks.
    buffers: Vec<Vec<(usize, u64)>>,
    chooser: Option<Chooser>,
    trace: Vec<usize>,
    failure: Option<RawFailure>,
    abort: bool,
    finished: usize,
    decisions: usize,
    /// Timeout firings so far this execution (see [`MAX_TIMEOUTS`]).
    timeouts: usize,
}

pub(crate) struct Execution {
    state: OsMutex<ExecState>,
    cv: OsCondvar,
    handles: OsMutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, TaskId)>> = const { RefCell::new(None) };
}

fn current() -> (Arc<Execution>, TaskId) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("shuttle primitives may only be used inside model::check")
    })
}

type Guard<'a> = std::sync::MutexGuard<'a, ExecState>;

impl Execution {
    fn new(chooser: Chooser) -> Self {
        Execution {
            state: OsMutex::new(ExecState {
                tasks: Vec::new(),
                joiners: Vec::new(),
                active: None,
                mutexes: Vec::new(),
                rwlocks: Vec::new(),
                condvars: Vec::new(),
                atomics: Vec::new(),
                buffers: Vec::new(),
                chooser: Some(chooser),
                trace: Vec::new(),
                failure: None,
                abort: false,
                finished: 0,
                decisions: 0,
                timeouts: 0,
            }),
            cv: OsCondvar::new(),
            handles: OsMutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> Guard<'_> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

fn schedule_string(trace: &[usize]) -> String {
    trace
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(".")
}

/// Records the first failure and begins teardown: every parked task is
/// woken into a [`ModelAbort`] unwind.
fn fail(exec: &Execution, st: &mut ExecState, message: String) {
    if st.failure.is_none() {
        st.failure = Some(RawFailure {
            message,
            schedule: schedule_string(&st.trace),
        });
    }
    st.abort = true;
    exec.cv.notify_all();
}

/// One recorded decision among `options` alternatives. Forced decisions
/// (one option) are free: not consulted, not recorded, so they neither
/// deepen DFS nor bloat schedules.
fn choose(exec: &Execution, st: &mut ExecState, options: usize) -> usize {
    if options <= 1 {
        return 0;
    }
    st.decisions += 1;
    if st.decisions > MAX_DECISIONS {
        fail(
            exec,
            st,
            format!("decision budget exceeded ({MAX_DECISIONS}); model does not terminate?"),
        );
        return 0;
    }
    match st
        .chooser
        .as_mut()
        .expect("chooser present during execution")
        .choose(options)
    {
        Some(c) => {
            st.trace.push(c);
            c
        }
        None => {
            fail(exec, st, "replay schedule diverged from program".into());
            0
        }
    }
}

/// Hands the token to a chooser-selected runnable task — or detects
/// completion / deadlock when there is none.
fn reschedule(exec: &Execution, st: &mut ExecState) {
    if st.abort {
        exec.cv.notify_all();
        return;
    }
    let timeouts_left = st.timeouts < MAX_TIMEOUTS;
    let candidates: Vec<TaskId> = st
        .tasks
        .iter()
        .enumerate()
        .filter(|(_, s)| {
            matches!(s, Status::Runnable) || (timeouts_left && matches!(s, Status::TimedWait))
        })
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        if st.finished == st.tasks.len() {
            st.active = None;
            exec.cv.notify_all(); // wakes the iteration runner
        } else if st.tasks.contains(&Status::TimedWait) {
            fail(
                exec,
                st,
                format!(
                    "timed waiters exhausted the timeout budget ({MAX_TIMEOUTS}) \
                     with no possible notifier; unbounded wait_for retry loop?"
                ),
            );
        } else {
            let parked: Vec<TaskId> = st
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, s)| **s == Status::Blocked)
                .map(|(i, _)| i)
                .collect();
            fail(
                exec,
                st,
                format!("deadlock: tasks {parked:?} are parked with no runnable task"),
            );
        }
        return;
    }
    let idx = choose(exec, st, candidates.len());
    let chosen = candidates[idx];
    // Electing a task that is parked in a timed wait *is* its timeout
    // firing; charge it against the per-execution budget.
    if st.tasks[chosen] == Status::TimedWait {
        st.timeouts += 1;
    }
    st.active = Some(chosen);
    exec.cv.notify_all();
}

/// Parks until the scheduler hands this task the token; unwinds with
/// [`ModelAbort`] if teardown starts first.
fn wait_for_token<'a>(exec: &'a Execution, mut st: Guard<'a>, me: TaskId) -> Guard<'a> {
    loop {
        if st.abort {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        if st.active == Some(me) {
            st.tasks[me] = Status::Runnable;
            return st;
        }
        st = exec.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
    }
}

/// A preemption opportunity: lets the scheduler move the token before
/// the caller's next visible operation. Every instrumented operation
/// starts with one.
pub(crate) fn schedule_point() {
    let (exec, me) = current();
    let mut st = exec.lock();
    if st.abort {
        drop(st);
        std::panic::panic_any(ModelAbort);
    }
    reschedule(&exec, &mut st);
    let _st = wait_for_token(&exec, st, me);
}

/// Parks the current task (its status must already be non-runnable) and
/// returns once it is rescheduled.
fn park_here<'a>(exec: &'a Execution, st: Guard<'a>, me: TaskId) -> Guard<'a> {
    let mut st = st;
    reschedule(exec, &mut st);
    wait_for_token(exec, st, me)
}

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

pub(crate) fn mutex_register() -> usize {
    let (exec, _) = current();
    let mut st = exec.lock();
    st.mutexes.push(MutexSt {
        held_by: None,
        waiters: Vec::new(),
    });
    st.mutexes.len() - 1
}

pub(crate) fn mutex_lock(id: usize) {
    schedule_point();
    let (exec, me) = current();
    let mut st = exec.lock();
    loop {
        if st.abort {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        if st.mutexes[id].held_by.is_none() {
            st.mutexes[id].held_by = Some(me);
            return;
        }
        st.mutexes[id].waiters.push(me);
        st.tasks[me] = Status::Blocked;
        st = park_here(&exec, st, me);
    }
}

fn mutex_unlock_locked(st: &mut ExecState, id: usize) {
    st.mutexes[id].held_by = None;
    let waiters: Vec<TaskId> = st.mutexes[id].waiters.drain(..).collect();
    for w in waiters {
        if st.tasks[w] == Status::Blocked {
            st.tasks[w] = Status::Runnable;
        }
    }
}

/// Release bookkeeping. Never schedules and never panics: it runs on
/// guard drop paths, including unwinds during teardown.
pub(crate) fn mutex_unlock(id: usize) {
    let (exec, _) = current();
    let mut st = exec.lock();
    mutex_unlock_locked(&mut st, id);
}

// ---------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------

pub(crate) fn rwlock_register() -> usize {
    let (exec, _) = current();
    let mut st = exec.lock();
    st.rwlocks.push(RwSt {
        writer: None,
        readers: Vec::new(),
        waiters: Vec::new(),
    });
    st.rwlocks.len() - 1
}

pub(crate) fn rwlock_read(id: usize) {
    schedule_point();
    let (exec, me) = current();
    let mut st = exec.lock();
    loop {
        if st.abort {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        if st.rwlocks[id].writer.is_none() {
            st.rwlocks[id].readers.push(me);
            return;
        }
        st.rwlocks[id].waiters.push(me);
        st.tasks[me] = Status::Blocked;
        st = park_here(&exec, st, me);
    }
}

pub(crate) fn rwlock_write(id: usize) {
    schedule_point();
    let (exec, me) = current();
    let mut st = exec.lock();
    loop {
        if st.abort {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        if st.rwlocks[id].writer.is_none() && st.rwlocks[id].readers.is_empty() {
            st.rwlocks[id].writer = Some(me);
            return;
        }
        st.rwlocks[id].waiters.push(me);
        st.tasks[me] = Status::Blocked;
        st = park_here(&exec, st, me);
    }
}

fn rwlock_wake_waiters(st: &mut ExecState, id: usize) {
    let waiters: Vec<TaskId> = st.rwlocks[id].waiters.drain(..).collect();
    for w in waiters {
        if st.tasks[w] == Status::Blocked {
            st.tasks[w] = Status::Runnable;
        }
    }
}

/// Non-panicking drop-path bookkeeping, like [`mutex_unlock`].
pub(crate) fn rwlock_read_unlock(id: usize) {
    let (exec, me) = current();
    let mut st = exec.lock();
    st.rwlocks[id].readers.retain(|&r| r != me);
    if st.rwlocks[id].readers.is_empty() {
        rwlock_wake_waiters(&mut st, id);
    }
}

/// Non-panicking drop-path bookkeeping, like [`mutex_unlock`].
pub(crate) fn rwlock_write_unlock(id: usize) {
    let (exec, _) = current();
    let mut st = exec.lock();
    st.rwlocks[id].writer = None;
    rwlock_wake_waiters(&mut st, id);
}

// ---------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------

pub(crate) fn condvar_register() -> usize {
    let (exec, _) = current();
    let mut st = exec.lock();
    st.condvars.push(Vec::new());
    st.condvars.len() - 1
}

/// Atomically releases `mutex` and parks on `cv`; returns whether the
/// wait ended by timeout. The caller must have dropped its inner guard
/// already and must reacquire via [`mutex_lock`]'s caller-side wrapper
/// after this returns (this function reacquires the *bookkeeping* lock
/// itself).
///
/// Untimed waits wake only on notification. Timed waits stay
/// schedulable: the scheduler electing the waiter without a
/// notification **is** the timeout firing, so both outcomes of every
/// race are explored. Spurious wakeups are not modeled.
pub(crate) fn condvar_wait(cv: usize, mutex: usize, timed: bool) -> bool {
    let (exec, me) = current();
    let timed_out;
    {
        let mut st = exec.lock();
        if st.abort {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        mutex_unlock_locked(&mut st, mutex);
        st.condvars[cv].push(CvWaiter {
            task: me,
            notified: false,
        });
        st.tasks[me] = if timed {
            Status::TimedWait
        } else {
            Status::Blocked
        };
        let mut st = park_here(&exec, st, me);
        let pos = st.condvars[cv]
            .iter()
            .position(|w| w.task == me)
            .expect("waiter entry present until its task removes it");
        let w = st.condvars[cv].remove(pos);
        timed_out = !w.notified;
    }
    mutex_lock(mutex);
    timed_out
}

/// Notification wakes waiters in FIFO order (`all = false` wakes the
/// first un-notified waiter; `true` wakes every one).
pub(crate) fn condvar_notify(cv: usize, all: bool) {
    schedule_point();
    let (exec, _) = current();
    let mut st = exec.lock();
    let mut woken: Vec<TaskId> = Vec::new();
    for w in st.condvars[cv].iter_mut() {
        if !w.notified {
            w.notified = true;
            woken.push(w.task);
            if !all {
                break;
            }
        }
    }
    for t in woken {
        if matches!(st.tasks[t], Status::Blocked | Status::TimedWait) {
            st.tasks[t] = Status::Runnable;
        }
    }
}

// ---------------------------------------------------------------------
// Atomics (store-buffer model for Relaxed; see module docs)
// ---------------------------------------------------------------------

pub(crate) fn atomic_register(initial: u64) -> usize {
    let (exec, _) = current();
    let mut st = exec.lock();
    st.atomics.push(initial);
    st.atomics.len() - 1
}

fn flush_buffer(st: &mut ExecState, task: TaskId) {
    let pending = std::mem::take(&mut st.buffers[task]);
    for (id, v) in pending {
        st.atomics[id] = v;
    }
}

/// Commits `task`'s pending stores to `id` only (in program order, so
/// the latest wins), leaving stores to other locations buffered — the
/// mechanism by which relaxed stores become visible out of order.
fn flush_location(st: &mut ExecState, task: TaskId, id: usize) {
    let mut latest = None;
    st.buffers[task].retain(|&(a, v)| {
        if a == id {
            latest = Some(v);
            false
        } else {
            true
        }
    });
    if let Some(v) = latest {
        st.atomics[id] = v;
    }
}

pub(crate) fn atomic_load(id: usize) -> u64 {
    schedule_point();
    let (exec, me) = current();
    let mut st = exec.lock();
    // A task always observes its own program order: the latest store it
    // buffered wins over the committed value, with no choice involved.
    if let Some(&(_, v)) = st.buffers[me].iter().rev().find(|&&(a, _)| a == id) {
        return v;
    }
    let staging: Vec<TaskId> = (0..st.buffers.len())
        .filter(|&t| t != me && st.buffers[t].iter().any(|&(a, _)| a == id))
        .collect();
    if staging.is_empty() {
        return st.atomics[id];
    }
    // Scheduling choice: keep reading the committed (stale) value, or
    // have one buffering task's stores *to this location* become
    // visible first. Committing per location (not the whole buffer) is
    // what lets relaxed stores to different locations be observed out
    // of program order — the reordering a missing `Release` permits.
    let c = choose(&exec, &mut st, staging.len() + 1);
    if c > 0 {
        flush_location(&mut st, staging[c - 1], id);
    }
    st.atomics[id]
}

pub(crate) fn atomic_store(id: usize, value: u64, relaxed: bool) {
    schedule_point();
    let (exec, me) = current();
    let mut st = exec.lock();
    if relaxed {
        st.buffers[me].push((id, value));
    } else {
        // Release (or stronger): everything this task stored before
        // becomes visible no later than this store.
        flush_buffer(&mut st, me);
        st.atomics[id] = value;
    }
}

/// Read-modify-write: acts on the latest value, so every buffer holding
/// this location commits first; the RMW itself is globally visible.
pub(crate) fn atomic_rmw(id: usize, f: impl FnOnce(u64) -> u64) -> u64 {
    schedule_point();
    let (exec, _me) = current();
    let mut st = exec.lock();
    let staging: Vec<TaskId> = (0..st.buffers.len())
        .filter(|&t| st.buffers[t].iter().any(|&(a, _)| a == id))
        .collect();
    for t in staging {
        flush_buffer(&mut st, t);
    }
    let old = st.atomics[id];
    st.atomics[id] = f(old);
    old
}

pub(crate) fn atomic_compare_exchange(id: usize, expected: u64, new: u64) -> Result<u64, u64> {
    let mut swapped = false;
    let old = atomic_rmw(id, |v| {
        if v == expected {
            swapped = true;
            new
        } else {
            v
        }
    });
    if swapped {
        Ok(old)
    } else {
        Err(old)
    }
}

// ---------------------------------------------------------------------
// Tasks
// ---------------------------------------------------------------------

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn task_main(exec: &Arc<Execution>, me: TaskId, body: impl FnOnce()) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(exec), me)));
    let result = catch_unwind(AssertUnwindSafe(|| {
        let st = exec.lock();
        let st = wait_for_token(exec, st, me);
        drop(st);
        body();
    }));
    CURRENT.with(|c| *c.borrow_mut() = None);
    let mut st = exec.lock();
    match result {
        Ok(()) => flush_buffer(&mut st, me),
        Err(payload) => {
            if !payload.is::<ModelAbort>() {
                let msg = panic_message(payload.as_ref());
                fail(exec, &mut st, format!("task {me} panicked: {msg}"));
            }
        }
    }
    st.tasks[me] = Status::Finished;
    st.finished += 1;
    let joiners: Vec<TaskId> = std::mem::take(&mut st.joiners[me]);
    for j in joiners {
        if st.tasks[j] == Status::Blocked {
            st.tasks[j] = Status::Runnable;
        }
    }
    reschedule(exec, &mut st);
}

/// Spawns a model task; the new task is immediately schedulable, and
/// spawning itself is a yield point (the child may run before the
/// parent's next operation).
pub(crate) fn spawn_task(body: impl FnOnce() + Send + 'static) -> TaskId {
    let (exec, _me) = current();
    let id = {
        let mut st = exec.lock();
        st.tasks.push(Status::Runnable);
        st.joiners.push(Vec::new());
        st.buffers.push(Vec::new());
        st.tasks.len() - 1
    };
    let exec2 = Arc::clone(&exec);
    let handle = std::thread::Builder::new()
        .name(format!("shuttle-task-{id}"))
        .spawn(move || task_main(&exec2, id, body))
        .expect("spawn model task thread");
    exec.handles
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(handle);
    schedule_point();
    id
}

/// Parks until `target` finishes.
pub(crate) fn join_task(target: TaskId) {
    let (exec, me) = current();
    let mut st = exec.lock();
    loop {
        if st.abort {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        if st.tasks[target] == Status::Finished {
            return;
        }
        st.joiners[target].push(me);
        st.tasks[me] = Status::Blocked;
        st = park_here(&exec, st, me);
    }
}

// ---------------------------------------------------------------------
// Iteration runner
// ---------------------------------------------------------------------

/// Runs the model closure once under `chooser`, to completion or first
/// failure; returns the chooser (with its DFS bookkeeping advanced-able)
/// and the failure, if any.
pub(crate) fn run_iteration(
    body: Arc<dyn Fn() + Send + Sync>,
    chooser: Chooser,
) -> (Chooser, Option<RawFailure>) {
    let exec = Arc::new(Execution::new(chooser));
    {
        let mut st = exec.lock();
        st.tasks.push(Status::Runnable);
        st.joiners.push(Vec::new());
        st.buffers.push(Vec::new());
        st.active = Some(0);
    }
    let exec2 = Arc::clone(&exec);
    let root = std::thread::Builder::new()
        .name("shuttle-task-0".into())
        .spawn(move || task_main(&exec2, 0, move || body()))
        .expect("spawn model root thread");
    {
        let mut st = exec.lock();
        while st.finished < st.tasks.len() {
            st = exec.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
    let _ = root.join();
    loop {
        let handle = exec
            .handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop();
        match handle {
            Some(h) => {
                let _ = h.join();
            }
            None => break,
        }
    }
    let mut st = exec.lock();
    let chooser = st.chooser.take().expect("chooser returned after execution");
    let failure = st.failure.take();
    (chooser, failure)
}

/// Registers a lazily-initialized object id: the pattern every
/// instrumented primitive uses so construction can happen outside any
/// execution (and `new` can stay allocation-free) while first *use*
/// registers with the live execution.
pub(crate) fn lazy_id(slot: &OnceLock<usize>, register: impl FnOnce() -> usize) -> usize {
    *slot.get_or_init(register)
}
