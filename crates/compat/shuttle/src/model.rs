//! Entry points: run a closure under the deterministic scheduler and
//! explore its interleavings.

#[cfg(feature = "model")]
use crate::chooser::Chooser;
#[cfg(feature = "model")]
use crate::runtime;
#[cfg(feature = "model")]
use std::sync::Arc;

/// A property violation found while exploring: the failure message plus
/// the decision sequence that reproduces it (feed to [`replay`]).
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong: the panic message of a failed assertion, a
    /// deadlock report, or a replay divergence.
    pub message: String,
    /// Dot-separated decision indices; replaying them reproduces this
    /// exact interleaving.
    pub schedule: String,
}

/// The outcome of an exploration run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Interleavings actually executed.
    pub iterations: usize,
    /// Whether DFS enumerated the *entire* schedule space (always
    /// `false` for random walks, which have no notion of exhaustion).
    pub complete: bool,
    /// The first failure found, if any; exploration stops at the first.
    pub failure: Option<Failure>,
}

impl Report {
    /// Panics with the failure message and its replayable schedule if
    /// the exploration found one.
    pub fn assert_ok(&self) {
        if let Some(f) = &self.failure {
            panic!(
                "model check failed after {} interleaving(s): {}\nreplay schedule: \"{}\"",
                self.iterations, f.message, f.schedule
            );
        }
    }
}

/// Default DFS budget for [`check`]: enough to exhaust every model in
/// this workspace's quick battery, small enough to stay interactive.
pub const DEFAULT_ITERATIONS: usize = 10_000;

#[cfg(feature = "model")]
fn from_raw(f: runtime::RawFailure) -> Failure {
    Failure {
        message: f.message,
        schedule: f.schedule,
    }
}

/// Explores `body` with bounded exhaustive DFS, up to `max_iterations`
/// schedules, stopping at the first failure.
///
/// The closure runs once per schedule and must set up its own state
/// each time (construct the shared structures inside the closure).
#[cfg(feature = "model")]
pub fn explore<F: Fn() + Send + Sync + 'static>(body: F, max_iterations: usize) -> Report {
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
    let mut chooser = Chooser::dfs();
    let mut iterations = 0;
    loop {
        let (next, failure) = runtime::run_iteration(Arc::clone(&body), chooser);
        chooser = next;
        iterations += 1;
        if let Some(f) = failure {
            return Report {
                iterations,
                complete: false,
                failure: Some(from_raw(f)),
            };
        }
        if !chooser.advance() {
            return Report {
                iterations,
                complete: true,
                failure: None,
            };
        }
        if iterations >= max_iterations {
            return Report {
                iterations,
                complete: false,
                failure: None,
            };
        }
    }
}

/// Explores `body` with `iterations` seeded random walks — deep-schedule
/// coverage where DFS cannot finish. Deterministic per `seed`; a failure
/// still reports an exact replayable schedule.
#[cfg(feature = "model")]
pub fn explore_random<F: Fn() + Send + Sync + 'static>(
    body: F,
    seed: u64,
    iterations: usize,
) -> Report {
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
    let mut chooser = Chooser::random(seed);
    for i in 0..iterations {
        let (next, failure) = runtime::run_iteration(Arc::clone(&body), chooser);
        chooser = next;
        if let Some(f) = failure {
            return Report {
                iterations: i + 1,
                complete: false,
                failure: Some(from_raw(f)),
            };
        }
    }
    Report {
        iterations,
        complete: false,
        failure: None,
    }
}

/// Re-runs `body` under the exact decision sequence of a recorded
/// `schedule` string — the reproduction path for any reported failure.
#[cfg(feature = "model")]
pub fn replay<F: Fn() + Send + Sync + 'static>(body: F, schedule: &str) -> Report {
    let choices: Vec<usize> = if schedule.is_empty() {
        Vec::new()
    } else {
        schedule
            .split('.')
            .map(|c| {
                c.parse()
                    .expect("schedule strings are dot-separated indices")
            })
            .collect()
    };
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
    let (_, failure) = runtime::run_iteration(body, Chooser::replay(choices));
    Report {
        iterations: 1,
        complete: false,
        failure: failure.map(from_raw),
    }
}

/// Checks `body` across up to [`DEFAULT_ITERATIONS`] DFS schedules,
/// panicking (with the replayable schedule) on the first property
/// violation. The `assert!`-style entry point; use [`explore`] /
/// [`explore_random`] when the report itself is wanted.
#[cfg(feature = "model")]
pub fn check<F: Fn() + Send + Sync + 'static>(body: F) {
    explore(body, DEFAULT_ITERATIONS).assert_ok();
}

// ------------------------------------------------------------------
// Passthrough (feature "model" disabled): run the closure once.
// ------------------------------------------------------------------

/// Passthrough: runs `body` once on the live OS scheduler.
#[cfg(not(feature = "model"))]
pub fn explore<F: Fn() + Send + Sync + 'static>(body: F, _max_iterations: usize) -> Report {
    body();
    Report {
        iterations: 1,
        complete: false,
        failure: None,
    }
}

/// Passthrough: runs `body` once on the live OS scheduler.
#[cfg(not(feature = "model"))]
pub fn explore_random<F: Fn() + Send + Sync + 'static>(
    body: F,
    _seed: u64,
    _iterations: usize,
) -> Report {
    explore(body, 1)
}

/// Passthrough: runs `body` once; the schedule is ignored.
#[cfg(not(feature = "model"))]
pub fn replay<F: Fn() + Send + Sync + 'static>(body: F, _schedule: &str) -> Report {
    explore(body, 1)
}

/// Passthrough: runs `body` once on the live OS scheduler.
#[cfg(not(feature = "model"))]
pub fn check<F: Fn() + Send + Sync + 'static>(body: F) {
    body();
}
