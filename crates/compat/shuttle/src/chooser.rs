//! Schedule-decision strategies: the pluggable "which option next?"
//! policy behind every nondeterministic point the runtime hits.
//!
//! A run of a model is fully determined by the sequence of choices made
//! at its decision points (which runnable task gets the token, which
//! buffered store a load observes). The three strategies:
//!
//! * [`Chooser::dfs`] — systematic depth-first enumeration of the
//!   decision tree: replay a prefix, extend it with first options, then
//!   backtrack the deepest unexhausted branch. Exhaustive for bounded
//!   models.
//! * [`Chooser::random`] — a seeded linear congruential walk; cheap
//!   coverage of schedules too deep to enumerate. Deterministic per
//!   seed.
//! * [`Chooser::replay`] — replays an exact recorded choice sequence
//!   (the `schedule` string a failure report carries), reproducing a
//!   failing interleaving on demand.

/// One backtrackable decision in the DFS enumeration.
pub(crate) struct Branch {
    chosen: usize,
    options: usize,
}

/// Deterministic pseudo-random stream (64-bit LCG, high bits taken).
pub(crate) struct Lcg(u64);

impl Lcg {
    pub(crate) fn new(seed: u64) -> Self {
        // Scramble so that small consecutive seeds give unrelated
        // streams.
        Lcg(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 33
    }
}

/// A schedule-decision strategy consulted by the runtime at every
/// nondeterministic point.
pub(crate) enum Chooser {
    /// Systematic DFS over the decision tree.
    Dfs { stack: Vec<Branch>, pos: usize },
    /// Seeded random walk.
    Random(Lcg),
    /// Exact replay of a recorded choice sequence.
    Replay { choices: Vec<usize>, pos: usize },
}

impl Chooser {
    pub(crate) fn dfs() -> Self {
        Chooser::Dfs {
            stack: Vec::new(),
            pos: 0,
        }
    }

    pub(crate) fn random(seed: u64) -> Self {
        Chooser::Random(Lcg::new(seed))
    }

    pub(crate) fn replay(choices: Vec<usize>) -> Self {
        Chooser::Replay { choices, pos: 0 }
    }

    /// Picks one of `options` (≥ 2) alternatives. `None` means a replay
    /// schedule diverged from the program (ran out of recorded choices,
    /// or the recorded choice is out of range) — the runtime reports
    /// that as a failure rather than guessing.
    pub(crate) fn choose(&mut self, options: usize) -> Option<usize> {
        match self {
            Chooser::Dfs { stack, pos } => {
                let chosen = if *pos < stack.len() {
                    // Replaying the prefix reached by backtracking. The
                    // program is deterministic given its prefix, so the
                    // option count matches what was recorded.
                    stack[*pos].chosen
                } else {
                    stack.push(Branch { chosen: 0, options });
                    0
                };
                *pos += 1;
                Some(chosen)
            }
            Chooser::Random(lcg) => Some((lcg.next() as usize) % options),
            Chooser::Replay { choices, pos } => {
                let c = choices.get(*pos).copied()?;
                *pos += 1;
                if c >= options {
                    return None;
                }
                Some(c)
            }
        }
    }

    /// After a DFS iteration: backtrack to the deepest branch with an
    /// untried option and arm it. `false` when the whole decision tree
    /// has been enumerated (or for non-DFS strategies, which have no
    /// notion of exhaustion).
    pub(crate) fn advance(&mut self) -> bool {
        let Chooser::Dfs { stack, pos } = self else {
            return false;
        };
        while let Some(last) = stack.last() {
            if last.chosen + 1 >= last.options {
                stack.pop();
            } else {
                break;
            }
        }
        match stack.last_mut() {
            None => false,
            Some(last) => {
                last.chosen += 1;
                *pos = 0;
                true
            }
        }
    }
}
