//! Offline mini model checker in the spirit of the `shuttle` crate.
//!
//! This build environment has no network access to crates.io, so the
//! workspace vendors a small deterministic-scheduling model checker
//! with the shape of `shuttle`: swap `thread::spawn` /
//! `sync::{Mutex, RwLock, Condvar}` / `sync::atomic` imports for the
//! stand-ins here, wrap the concurrent scenario in
//! [`model::check`] (or the finer-grained [`model::explore`] /
//! [`model::explore_random`]), and every assertion in the closure is
//! checked across *many interleavings* instead of the one the OS
//! happens to produce:
//!
//! ```
//! use shuttle::sync::Mutex;
//! use shuttle::{model, thread};
//! use std::sync::Arc;
//!
//! model::check(|| {
//!     let n = Arc::new(Mutex::new(0));
//!     let n2 = Arc::clone(&n);
//!     let t = thread::spawn(move || *n2.lock() += 1);
//!     *n.lock() += 1;
//!     t.join().unwrap();
//!     assert_eq!(*n.lock(), 2);
//! });
//! ```
//!
//! Three exploration strategies share one runtime (see
//! [`runtime`](self) docs in the source): bounded exhaustive DFS over
//! the schedule tree, seeded random walks for spaces too deep to
//! enumerate, and exact replay of a failure's recorded `schedule`
//! string. Failures — property panics, deadlocks, replay divergence —
//! carry that schedule, so every red result reproduces on demand with
//! [`model::replay`].
//!
//! The instrumentation lives behind the `model` feature (default on).
//! With `--no-default-features` every stand-in degrades to a thin
//! `std` wrapper and [`model::check`] runs the closure exactly once —
//! so code written against this crate also builds and runs as a plain
//! concurrent program.
//!
//! Known divergences from the real `shuttle`, beyond scale: spurious
//! condvar wakeups are not generated (timeouts *are* explored as
//! scheduling choices), and the weak-memory model is a single
//! store-buffer per task — enough to catch missed-`Release` publication
//! bugs, far short of full C11.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

#[cfg(feature = "model")]
mod chooser;
#[cfg(feature = "model")]
mod runtime;

pub mod atomic;
pub mod model;
pub mod sync;
pub mod thread;
