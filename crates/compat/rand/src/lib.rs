//! Offline stand-in for the `rand` crate.
//!
//! This build environment has no network access to crates.io, so the
//! workspace vendors the **API subset it actually uses**: `StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over half-open
//! integer and float ranges. Swap this path dependency for the real
//! `rand = "0.8"` in `[workspace.dependencies]` when a registry is
//! reachable; no call site needs to change.
//!
//! The generator behind `StdRng` here is xoshiro256++ seeded through
//! SplitMix64 — not the real crate's ChaCha12, so *sequences differ*
//! from upstream `rand` for the same seed. Everything in this workspace
//! is seed-deterministic and self-consistent, which is the property the
//! datasets and benches actually rely on.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples from the type's standard distribution (full range for
    /// integers, `[0, 1)` for floats), mirroring `Rng::gen`.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

/// Types with a standard distribution for [`Rng::gen`].
pub trait SampleStandard {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample one uniform value from itself.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Lemire multiply-shift over the span; bias is < 2^-64
                // per draw, irrelevant at our workload sizes.
                let span = (self.end as i128 - self.start as i128) as u128;
                let hit = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hit) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + unit * (self.end - self.start);
        // Rounding can land exactly on the excluded end; fold back.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        let v = self.start + unit * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::std_rng::StdRng;
}

mod std_rng {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// Statistically strong for simulation workloads, tiny, and
    /// `Copy`-cheap. **Not** cryptographically secure and **not**
    /// stream-compatible with upstream `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..10).map(|_| r.gen_range(0u64..1_000_000)).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..10).map(|_| r.gen_range(0u64..1_000_000)).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..10).map(|_| r.gen_range(0u64..1_000_000)).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let i = r.gen_range(-50i64..50);
            assert!((-50..50).contains(&i));
        }
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(1);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[r.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(1);
        let _ = r.gen_range(5u64..5);
    }
}
