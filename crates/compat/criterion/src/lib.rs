//! Offline stand-in for the `criterion` benchmark harness.
//!
//! This build environment has no network access to crates.io, so the
//! workspace vendors the **API subset its benches use**: groups,
//! `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! throughput annotation, and the `criterion_group!` /
//! `criterion_main!` macros. Swap this path dependency for the real
//! `criterion = "0.5"` in `[workspace.dependencies]` when a registry is
//! reachable; no bench file needs to change.
//!
//! Instead of criterion's bootstrap statistics, each benchmark runs a
//! short warm-up plus `sample_size` timed samples and prints
//! mean / min / max nanoseconds per iteration — enough to eyeball
//! regressions, not enough for publication numbers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state (a far smaller cousin of
/// `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup { c: self, name }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.sample_size, id, f);
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's standard labeling.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A bare parameter as the label.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion accepted anywhere an id is expected (`&str`, `String`, or
/// [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Work-per-iteration annotation (printed, not post-processed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hints for [`Bencher::iter_batched`]; the stand-in runs
/// one batch per sample regardless.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup.
    SmallInput,
    /// Large per-iteration setup.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the work done per iteration (printed alongside results).
    pub fn throughput(&mut self, t: Throughput) {
        match t {
            Throughput::Elements(n) => println!("  throughput unit: {n} elements/iter"),
            Throughput::Bytes(n) => println!("  throughput unit: {n} bytes/iter"),
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<ID, F>(&mut self, id: ID, f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_one(self.c.sample_size, &label, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<ID, I, F>(&mut self, id: ID, input: &I, mut f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f` once per sample.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up out of measurement.
        black_box(f());
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }

    /// Times `routine` on a fresh `setup()` product per sample, with the
    /// setup excluded from measurement.
    pub fn iter_batched<S, O, FS, FR>(&mut self, mut setup: FS, mut routine: FR, _size: BatchSize)
    where
        FS: FnMut() -> S,
        FR: FnMut(S) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.samples.push(start.elapsed());
    }
}

fn run_one<F>(sample_size: usize, label: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("  {label}: no samples recorded");
        return;
    }
    let ns: Vec<f64> = b.samples.iter().map(|d| d.as_nanos() as f64).collect();
    let mean = ns.iter().sum::<f64>() / ns.len() as f64;
    let min = ns.iter().copied().fold(f64::INFINITY, f64::min);
    let max = ns.iter().copied().fold(0.0f64, f64::max);
    println!(
        "  {label}: mean {mean:.0} ns  (min {min:.0}, max {max:.0}, n={})",
        ns.len()
    );
}

/// Declares a group function; mirrors criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.throughput(Throughput::Elements(4));
        group.bench_function("plain", |b| b.iter(|| black_box(2u64 + 2)));
        group.bench_function(BenchmarkId::new("param", 7), |b| {
            b.iter_batched(
                || vec![1u64; 4],
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = target
    }

    #[test]
    fn group_macro_runs() {
        benches();
    }
}
