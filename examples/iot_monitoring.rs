//! IoT monitoring — the paper's motivating workload (Section 2.1):
//! a building full of sensors appending timestamped events, with
//! dashboards running time-window queries against the live index.
//!
//! Shows: bulk load of history, continuous appends through the buffered
//! insert path, hourly-window range aggregation, and how the day/night
//! periodicity shows up in the segment structure.
//!
//! Run: `cargo run --release --example iot_monitoring`

use fiting::datasets;
use fiting::tree::FitingTreeBuilder;

const MS_PER_HOUR: u64 = 3_600_000;

fn main() {
    // A year of historical events from ~100 sensors (synthetic stand-in
    // for the paper's private trace; same day/night duty cycle).
    let history = datasets::iot(2_000_000, 7);
    let n_history = history.len();
    let pairs = history.iter().enumerate().map(|(i, &t)| (t, i as u64));

    let mut index = FitingTreeBuilder::new(256)
        .bulk_load(pairs)
        .expect("generator emits strictly increasing timestamps");
    let stats = index.stats();
    println!(
        "loaded {} events into {} segments ({} bytes of index)",
        stats.len, stats.segment_count, stats.index_size_bytes
    );
    println!(
        "average segment covers {:.0} events — long quiet nights compress well",
        stats.avg_segment_len
    );

    // Live ingestion: events keep arriving after the bulk load.
    let last = *history.last().unwrap();
    for i in 0..10_000u64 {
        index.insert(last + 1 + i * 37, n_history as u64 + i);
    }
    println!(
        "after live appends: {} events, {} segments",
        index.len(),
        index.segment_count()
    );

    // Dashboard query: events per hour over the trailing day.
    let day_start = last.saturating_sub(24 * MS_PER_HOUR);
    println!("\nevents per hour, trailing 24h:");
    let mut bars = Vec::new();
    for h in 0..24 {
        let lo = day_start + h * MS_PER_HOUR;
        let hi = lo + MS_PER_HOUR;
        let count = index.range(lo..hi).count();
        bars.push(count);
    }
    let max = (*bars.iter().max().unwrap_or(&1)).max(1);
    for (h, count) in bars.iter().enumerate() {
        let bar = "#".repeat(count * 40 / max);
        println!("  h{h:02} {count:>6} {bar}");
    }

    // Point query: what happened at a specific moment?
    let probe = history[n_history / 2];
    println!("\nevent id at t={probe}: {:?}", index.get(&probe));
}
