//! Quickstart: build a FITing-Tree over sorted data, look things up,
//! insert, scan, and inspect the footprint.
//!
//! Run: `cargo run --release --example quickstart`

use fiting::tree::FitingTreeBuilder;

fn main() {
    // One million sensor readings keyed by (strictly increasing)
    // microsecond timestamps.
    let readings: Vec<(u64, f64)> = (0..1_000_000u64)
        .map(|i| (1_700_000_000_000_000 + i * 250, (i as f64 * 0.01).sin()))
        .collect();

    // The only decision: the error budget. 64 means "a lookup may scan
    // at most ~128 extra slots after interpolation".
    let mut index = FitingTreeBuilder::new(64)
        .bulk_load(readings.iter().copied())
        .expect("timestamps are strictly increasing");

    // Point lookup.
    let probe = 1_700_000_000_000_000 + 123_456 * 250;
    println!("reading at t={probe}: {:?}", index.get(&probe));

    // Range scan: half a millisecond of readings.
    let from = 1_700_000_000_000_000 + 500_000 * 250;
    let count = index.range(from..from + 500).count();
    println!("readings in [t0, t0+500us): {count}");

    // Live appends go to per-segment buffers; overflow re-segments.
    index.insert(probe + 1, 42.0);
    assert_eq!(index.get(&(probe + 1)), Some(&42.0));

    // The punchline: index overhead vs the data it indexes.
    let stats = index.stats();
    println!(
        "{} keys in {} segments; index overhead {} bytes ({}x smaller than the data)",
        stats.len,
        stats.segment_count,
        stats.index_size_bytes,
        stats.data_size_bytes / stats.index_size_bytes.max(1),
    );
}
