//! High-rate stream ingestion with the delta-main layering — the
//! extension the paper sketches at the end of Section 5 ("a
//! write-optimized delta ... like column stores").
//!
//! Compares, on the same append-heavy workload:
//! * the base FITing-Tree (per-segment buffers, local re-segmentation);
//! * [`DeltaFitingTree`] (one dense delta, batched merges).
//!
//! Also shows trace save/load from `fiting-datasets` so a run can be
//! replayed bit-for-bit.
//!
//! Run: `cargo run --release --example stream_ingest`

use fiting::datasets::{self, trace};
use fiting::tree::{DeltaFitingTree, FitingTreeBuilder};
use std::time::Instant;

fn main() {
    let n = 1_000_000;
    let history = datasets::taxi_pickup_time(n, 9);
    let pairs: Vec<(u64, u64)> = history
        .iter()
        .enumerate()
        .map(|(i, &t)| (t, i as u64))
        .collect();

    // Pin the workload to disk so this run is replayable.
    let trace_path = std::env::temp_dir().join("fiting-stream-ingest.trace");
    trace::save_trace(&trace_path, &history).expect("writable temp dir");
    let replay = trace::load_trace(&trace_path).expect("readable trace");
    assert_eq!(replay, history);
    println!(
        "workload pinned to {} ({} keys)",
        trace_path.display(),
        replay.len()
    );

    // The write stream: late-arriving events interleaved into the
    // existing key range.
    let stream: Vec<u64> = history
        .iter()
        .step_by(3)
        .map(|&t| t + 1)
        .filter(|t| history.binary_search(t).is_err())
        .collect();
    println!("ingesting {} new events\n", stream.len());

    // Base index: per-segment buffers.
    let mut base = FitingTreeBuilder::new(1024)
        .bulk_load(pairs.iter().copied())
        .unwrap();
    let t0 = Instant::now();
    for (i, &t) in stream.iter().enumerate() {
        base.insert(t, i as u64);
    }
    let base_elapsed = t0.elapsed();
    println!(
        "per-segment buffers: {:.2} M inserts/s, {} segments after",
        stream.len() as f64 / base_elapsed.as_secs_f64() / 1e6,
        base.segment_count()
    );

    // Delta-main: batched merges.
    let mut delta = DeltaFitingTree::bulk_load(
        FitingTreeBuilder::new(1024),
        pairs.iter().copied(),
        64 * 1024,
    )
    .unwrap();
    let t0 = Instant::now();
    for (i, &t) in stream.iter().enumerate() {
        delta.insert(t, i as u64);
    }
    delta.merge().unwrap();
    let delta_elapsed = t0.elapsed();
    println!(
        "delta-main layering:  {:.2} M inserts/s (incl. final merge), {} segments after",
        stream.len() as f64 / delta_elapsed.as_secs_f64() / 1e6,
        delta.main().segment_count()
    );

    // Both views agree.
    for &t in stream.iter().step_by(997) {
        assert_eq!(base.get(&t).is_some(), delta.get(&t).is_some());
    }
    println!("\nspot-check: both ingestion paths serve identical reads");
    std::fs::remove_file(&trace_path).ok();
}
