//! The command-pipeline service end to end: a sharded FITing-Tree
//! behind `FitingService`, concurrent clients submitting typed
//! commands, the workers manufacturing batches, and a clean draining
//! shutdown.
//!
//! The flow is the README's architecture diagram in motion:
//!
//! ```text
//! caller → Client → per-shard bounded queue → worker → ShardedIndex
//!            ↑                                   │
//!            └────────── Ticket<T> ◄─────────────┘
//! ```
//!
//! Run: `cargo run --release --example service_demo`

use fiting::datasets;
use fiting::service::{Command, ServiceConfig, TryPushError};
use fiting::tree::{FitingService, FitingTreeBuilder};
use fiting::ShardedIndex;
use std::thread;
use std::time::Duration;

fn main() {
    // A sharded FITing-Tree over weblog-shaped timestamps.
    let history = datasets::weblogs(200_000, 5);
    let index = ShardedIndex::bulk_load(
        &FitingTreeBuilder::new(128),
        4,
        history
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u64))
            .collect(),
    )
    .unwrap();
    let last = *history.last().unwrap();

    // One queue + one worker per shard; a 200µs batch window lets
    // light traffic still form coalesced batches.
    let service = FitingService::start(
        index,
        ServiceConfig {
            queue_capacity: 512,
            batch_window: Duration::from_micros(200),
            ..ServiceConfig::default()
        },
    );

    // Ingest clients: each batches locally and submits through
    // `insert_many`, which splits per shard and resolves one ticket
    // with the total fresh-key count.
    let mut ingest = Vec::new();
    for t in 0..2u64 {
        let client = service.client();
        ingest.push(thread::spawn(move || {
            let mut fresh = 0;
            for wave in 0..20u64 {
                let batch: Vec<(u64, u64)> = (0..500u64)
                    .map(|i| (last + 1 + (t * 20 + wave) * 500 + i, i))
                    .collect();
                fresh += client.insert_many(batch).wait().expect("service running");
            }
            fresh
        }));
    }

    // A query client: pipelines point lookups (fire a wave of
    // commands, then wait the tickets) and a cross-shard scan.
    let query = {
        let client = service.client();
        thread::spawn(move || {
            let mut hits = 0u64;
            for wave in 0..50u64 {
                let tickets: Vec<_> = (0..200u64)
                    .map(|i| client.get(history[((wave * 200 + i) % 200_000) as usize]))
                    .collect();
                for t in tickets {
                    if t.wait().expect("service running").is_some() {
                        hits += 1;
                    }
                }
            }
            hits
        })
    };

    // Raw command submission with explicit backpressure handling:
    // `try_submit` hands the command back on Busy instead of blocking.
    let client = service.client();
    let mut busy_retries = 0u64;
    for i in 0..1_000u64 {
        let (cmd, _ticket) = Command::insert(last + 500_000 + i, i);
        let mut pending = cmd;
        loop {
            match client.try_submit(pending) {
                Ok(()) => break,
                Err(TryPushError::Busy(cmd)) => {
                    busy_retries += 1;
                    thread::sleep(Duration::from_micros(50));
                    pending = cmd;
                }
                Err(TryPushError::Closed(_)) => unreachable!("service is open"),
            }
        }
    }

    let ingested: usize = ingest.into_iter().map(|h| h.join().unwrap()).sum();
    let hits = query.join().unwrap();

    // The pipeline is observable: queue depth, batch sizes, shard
    // occupancy.
    let stats = service.stats();
    println!("ingested {ingested} fresh keys, {hits} read hits, {busy_retries} busy retries");
    println!(
        "mean batch {:.1} commands/drain, shard imbalance {:.2}",
        stats.mean_batch_len(),
        stats.imbalance()
    );
    for (lane, shard) in stats.lanes.iter().zip(&stats.shards) {
        println!(
            "  lane {}: {} entries, {} processed in {} batches (largest {})",
            lane.lane, shard.entries, lane.processed, lane.batches, lane.largest_batch
        );
    }

    // Shutdown closes the queues, drains every accepted command, and
    // hands the index back.
    let index = service.shutdown();
    println!("after shutdown: {} entries", index.len());
}
