//! Sharing one index across threads — an extension beyond the paper
//! (whose evaluation is single-threaded per core): a writer thread
//! ingests live events while reader threads serve point and range
//! queries.
//!
//! `ConcurrentFitingTree` is the sharded front-end
//! (`ShardedIndex<K, V, FitingTree>`): the key space is
//! range-partitioned at bulk load and each shard sits behind its own
//! reader-writer lock, so the appending writer contends only with
//! readers of the hottest (latest) shard.
//!
//! Run: `cargo run --release --example concurrent_readers`

use fiting::datasets;
use fiting::index_api::ShardedIndex;
use fiting::tree::{ConcurrentFitingTree, FitingTreeBuilder};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn main() {
    let history = datasets::weblogs(500_000, 5);
    let last = *history.last().unwrap();
    let index: ConcurrentFitingTree<u64, u64> = ShardedIndex::bulk_load(
        &FitingTreeBuilder::new(128),
        8,
        history
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u64))
            .collect(),
    )
    .unwrap();
    println!("serving from {} shards", index.shard_count());

    let stop = Arc::new(AtomicBool::new(false));

    // Writer: appends fresh events.
    let writer = {
        let index = index.clone();
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut t = last;
            let mut written = 0u64;
            while !stop.load(Ordering::Relaxed) {
                t += 17;
                index.insert(t, written);
                written += 1;
            }
            written
        })
    };

    // Readers: random point lookups + trailing-window counts.
    let readers: Vec<_> = (0..3)
        .map(|id| {
            let index = index.clone();
            let stop = Arc::clone(&stop);
            let probes: Vec<u64> = history.iter().step_by(97 + id).copied().collect();
            thread::spawn(move || {
                let mut hits = 0u64;
                let mut scans = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for &p in probes.iter().take(1_000) {
                        if index.get(&p).is_some() {
                            hits += 1;
                        }
                    }
                    scans += index.range_collect(last.saturating_sub(10_000)..).len() as u64;
                }
                (hits, scans)
            })
        })
        .collect();

    thread::sleep(Duration::from_millis(500));
    stop.store(true, Ordering::Relaxed);

    let written = writer.join().unwrap();
    println!("writer ingested {written} events in 500ms");
    for (i, r) in readers.into_iter().enumerate() {
        let (hits, scanned) = r.join().unwrap();
        println!("reader {i}: {hits} point hits, {scanned} rows scanned in trailing windows");
    }
    let mut segments = 0;
    index.for_each_shard(|t| {
        t.check_invariants()
            .expect("index consistent after concurrent churn");
        segments += t.segment_count();
    });
    println!(
        "final: {} keys, {} segments across {} shards, {} bytes of index",
        index.len(),
        segments,
        index.shard_count(),
        index.size_bytes()
    );
}
