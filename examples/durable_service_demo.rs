//! The durability layer end to end: a durable sharded FITing-Tree
//! behind the service, a simulated kill (torn WAL tail included), and
//! crash-consistent recovery.
//!
//! ```text
//! Client → queue → worker ──insert──▶ DurableIndex ──log──▶ wal.<gen>
//!                    │                      │
//!                    └── group commit ──────┘   checkpoint ▶ snapshot.<gen>
//!
//! kill -9  ⇒  reopen = newest snapshot + WAL replay (torn tail cut)
//! ```
//!
//! Run: `cargo run --release --example durable_service_demo`

use fiting::storage::{DurableConfig, DurableIndex, FsyncPolicy};
use fiting::tree::{FitingTree, FitingTreeBuilder};
use fiting::{open_sharded, DurabilityConfig, IndexService, ServiceConfig, ShardedIndex};
use std::time::Duration;

type Durable = DurableIndex<u64, u64, FitingTree<u64, u64>>;

fn main() {
    let root = std::env::temp_dir().join(format!("fiting-durable-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // ---- Life before the crash -------------------------------------
    // A durable store: each shard gets its own directory with a
    // generation-numbered snapshot + write-ahead log.
    let config =
        DurableConfig::new(&root, FsyncPolicy::EveryN(64), FitingTreeBuilder::new(128)).unwrap();
    let index: ShardedIndex<u64, u64, Durable> =
        ShardedIndex::bulk_load(&config, 4, (0..100_000u64).map(|k| (k * 2, k)).collect()).unwrap();

    // The service group-commits the WALs after every drained write
    // batch; a coordinator thread checkpoints shards whose log has
    // grown past 256 KiB.
    let service = IndexService::start_durable(
        index,
        ServiceConfig::default(),
        DurabilityConfig {
            sync_each_batch: true,
            checkpoint_interval: Duration::from_millis(50),
            checkpoint_wal_bytes: 256 << 10,
        },
    );
    let client = service.client();
    client.remove(0).wait().unwrap();
    let mut tickets = Vec::new();
    for k in 0..5_000u64 {
        tickets.push(client.insert(k * 40 + 1, k)); // odd keys: all fresh
    }
    for t in tickets {
        t.wait().unwrap();
    }
    let live_len = service.index().len();
    println!("before the crash: {live_len} live entries across 4 durable shards");

    // ---- The crash ---------------------------------------------------
    // Drop without shutdown() — queues close, but pretend the process
    // died: additionally tear the tail off one shard's log, as if the
    // machine went down mid-write.
    drop(client);
    let _ = service.shutdown();
    let mut torn = None;
    for entry in std::fs::read_dir(&root).unwrap() {
        let dir = entry.unwrap().path();
        if !dir.is_dir() {
            continue;
        }
        for f in std::fs::read_dir(&dir).unwrap() {
            let path = f.unwrap().path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            if name.starts_with("wal.") {
                let bytes = std::fs::read(&path).unwrap();
                if bytes.len() > 40 {
                    std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
                    torn = Some((name, dir.clone()));
                    break;
                }
            }
        }
        if torn.is_some() {
            break;
        }
    }
    match &torn {
        Some((log, dir)) => println!(
            "simulated kill: tore 7 bytes off {log} in {}",
            dir.file_name().unwrap().to_string_lossy()
        ),
        None => println!("simulated kill: every log was already checkpointed away"),
    }

    // ---- Recovery ----------------------------------------------------
    // open_sharded: per shard, newest intact snapshot + WAL replay,
    // truncating the torn record; shard bounds re-derived from data.
    let (recovered, report) = open_sharded::<u64, u64, FitingTree<u64, u64>>(&config).unwrap();
    for s in &report.skipped {
        println!(
            "  skipped unrecoverable {}: {}",
            s.dir.file_name().unwrap().to_string_lossy(),
            s.error
        );
    }
    for r in &report.shards {
        println!(
            "  {}: generation {}, snapshot {:.1} MiB, {} ops replayed{}",
            r.dir.file_name().unwrap().to_string_lossy(),
            r.generation,
            r.snapshot_bytes as f64 / (1024.0 * 1024.0),
            r.replayed,
            if r.wal_truncated {
                " (torn tail discarded)"
            } else {
                ""
            }
        );
    }
    println!("after recovery: {} live entries", recovered.len());

    // Every group-committed write except any op in the torn record
    // survived; spot-check the data.
    assert_eq!(recovered.get(&0), None, "the remove survived");
    assert_eq!(recovered.get(&41), Some(1), "odd-key inserts survived");
    assert_eq!(recovered.get(&2), Some(1), "bulk-loaded data survived");
    let lost = live_len - recovered.len();
    assert!(lost <= 1, "at most the torn record's op may be lost");
    println!("prefix-consistent: {lost} op(s) lost to the torn tail — demo OK");

    let _ = std::fs::remove_dir_all(&root);
}
