//! Weblog analytics under a storage budget — the paper's DBA story
//! (Section 6): "I have 1 MB of memory for this index and a 2 µs lookup
//! SLA; configure it for me."
//!
//! Shows: learning the per-dataset segment-count model, both cost-model
//! selectors, and the resulting index compared against a dense B+ tree.
//!
//! Run: `cargo run --release --example weblog_analytics`

use fiting::baselines::{FullIndex, SortedIndex};
use fiting::datasets;
use fiting::tree::cost::{CostModel, SegmentCountModel};
use fiting::tree::FitingTreeBuilder;

fn main() {
    let keys = datasets::weblogs(2_000_000, 11);
    let pairs: Vec<(u64, u64)> = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u64))
        .collect();

    // Learn how compressible this dataset is: segments as a function of
    // the error threshold (one O(n) ShrinkingCone pass per candidate).
    let candidates: Vec<u64> = vec![16, 64, 256, 1024, 4096, 16384];
    let model = SegmentCountModel::learn(&keys, &candidates);
    println!("segment counts by error:");
    for &e in &candidates {
        println!("  e={e:<6} -> {:>8.0} segments", model.segments_at(e));
    }

    let cost = CostModel::default(); // c = 100ns, the paper's conservative choice

    // Scenario 1: storage budget of 64 KB.
    let budget = 64.0 * 1024.0;
    match cost.pick_error_for_size(&model, budget) {
        Some(e) => {
            let tree = FitingTreeBuilder::new(e)
                .bulk_load(pairs.iter().copied())
                .unwrap();
            println!(
                "\nbudget 64 KB -> error {e}: actual index {} bytes, {} segments",
                tree.index_size_bytes(),
                tree.segment_count()
            );
        }
        None => println!("\nbudget 64 KB: infeasible for this dataset"),
    }

    // Scenario 2: lookup SLA of 1500 ns.
    match cost.pick_error_for_latency(&model, 1_500.0) {
        Some(e) => {
            let tree = FitingTreeBuilder::new(e)
                .bulk_load(pairs.iter().copied())
                .unwrap();
            let est = cost.lookup_latency_ns(e, e / 2, model.segments_at(e));
            println!(
                "SLA 1500 ns -> error {e}: estimated {est:.0} ns, index {} bytes",
                tree.index_size_bytes()
            );
        }
        None => println!("SLA 1500 ns: no candidate error meets it"),
    }

    // The comparison the paper leads with: same data, dense index.
    let full = FullIndex::bulk_load(pairs.iter().copied());
    let fiting = FitingTreeBuilder::new(256)
        .bulk_load(pairs.iter().copied())
        .unwrap();
    println!(
        "\ndense B+ tree: {} bytes; FITing-Tree(e=256): {} bytes — {}x smaller",
        full.size_bytes(),
        fiting.index_size_bytes(),
        full.size_bytes() / fiting.index_size_bytes().max(1)
    );

    // Both answer the same queries.
    for &k in keys.iter().step_by(400_003) {
        assert_eq!(fiting.get(&k), full.get(&k));
    }
    println!("spot-checked: identical answers on sampled lookups");
}
