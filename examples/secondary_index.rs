//! Non-clustered (secondary) indexing — the paper's Maps scenario
//! (Section 2.2.1): a non-unique attribute (longitude) over an unsorted
//! base table, indexed through a sorted key-pages level.
//!
//! Shows: duplicates, row-id retrieval, spatial band queries, and
//! incremental maintenance as rows are added and deleted.
//!
//! Run: `cargo run --release --example secondary_index`

use fiting::datasets;
use fiting::tree::SecondaryIndex;

fn main() {
    // The base table: features with longitudes (fixed-point 1e-7 deg),
    // *not* sorted by longitude — row ids are table positions.
    let longitudes = datasets::maps(1_000_000, 3);
    let table: Vec<(u64, u64)> = longitudes
        .iter()
        .enumerate()
        .map(|(row, &lon)| (lon, row as u64))
        .collect();

    let mut index = SecondaryIndex::bulk_load(128, table.iter().copied())
        .expect("generator emits sorted longitudes");
    println!(
        "indexed {} rows over {} segments; index {} bytes, key pages {} bytes",
        index.len(),
        index.segment_count(),
        index.index_size_bytes(),
        index.key_pages_bytes()
    );

    // Exact-match: all features at one longitude (duplicates!).
    let probe = longitudes[500_000];
    let rows: Vec<u64> = index.get(&probe).collect();
    println!(
        "\nrows at longitude {probe}: {} matches (e.g. {:?})",
        rows.len(),
        &rows[..rows.len().min(5)]
    );

    // Band query: everything within ±0.01 degrees.
    let band = 100_000u64; // 0.01 degree in fixed-point
    let lo = probe.saturating_sub(band);
    let hi = probe + band;
    let in_band = index.range(lo..=hi).count();
    println!("features within ±0.01°: {in_band}");

    // Maintenance: a feature moves — delete + reinsert.
    let moved_row = rows[0];
    assert!(index.remove(&probe, moved_row));
    index.insert(probe + 42, moved_row);
    assert!(index.get(&(probe + 42)).any(|r| r == moved_row));
    println!("\nrelocated row {moved_row}: old entry removed, new entry queryable");

    // Selectivity sweep: how band width translates to rows scanned.
    println!("\nband width -> matching rows:");
    for exp in [3u32, 4, 5, 6, 7] {
        let w = 10u64.pow(exp);
        let c = index.range(probe.saturating_sub(w)..=probe + w).count();
        println!("  ±{:>9} fixed-point units: {c:>8}", w);
    }
}
