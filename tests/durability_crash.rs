//! Crash-injection battery for the durability layer.
//!
//! Builds a durable shard, applies a deterministic op stream (each op
//! is exactly one WAL record), then simulates crashes by mutilating a
//! copy of the shard's files and recovering:
//!
//! * **truncate at every record boundary** — recovery must replay
//!   exactly the records before the cut, with no truncation flag;
//! * **truncate mid-record** — the torn record and everything after it
//!   is discarded, the prefix before it survives;
//! * **flip one byte** at positions swept across the whole file — the
//!   per-record CRC (or the header check) must catch it and recovery
//!   must land on the prefix before the damaged record.
//!
//! After every injected crash the recovered index is compared entry-
//! for-entry against a `BTreeMap` oracle holding the state after the
//! surviving op prefix — the *prefix-consistency* invariant: recovery
//! always yields the state after some prefix of the logged mutations,
//! never a partial op.
//!
//! Scale knob: `FITING_STRESS_OPS` = logged ops (default 200, giving
//! well over 1 000 injected crash points).

use fiting::storage::{DurableConfig, DurableIndex, FsyncPolicy};
use fiting::tree::{FitingTree, FitingTreeBuilder};
use fiting::SortedIndex;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

type Durable = DurableIndex<u64, u64, FitingTree<u64, u64>>;

const BASE_N: u64 = 1_000;
const WAL_HEADER: usize = 16;

fn stress_ops() -> usize {
    std::env::var("FITING_STRESS_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// Deterministic 64-bit LCG (same constants as Knuth's MMIX).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

/// One logged mutation — applied identically to the durable index and
/// the oracle, and encoded as exactly one WAL record.
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Many(Vec<(u64, u64)>),
}

impl Op {
    fn apply_index(&self, idx: &mut Durable) {
        match self {
            Op::Insert(k, v) => {
                idx.insert(*k, *v);
            }
            Op::Remove(k) => {
                idx.remove(k);
            }
            Op::Many(pairs) => {
                idx.insert_many(pairs.clone());
            }
        }
    }

    fn apply_oracle(&self, map: &mut BTreeMap<u64, u64>) {
        match self {
            Op::Insert(k, v) => {
                map.insert(*k, *v);
            }
            Op::Remove(k) => {
                map.remove(k);
            }
            Op::Many(pairs) => {
                for &(k, v) in pairs {
                    map.insert(k, v);
                }
            }
        }
    }
}

fn gen_ops(n: usize, rng: &mut Lcg) -> Vec<Op> {
    (0..n)
        .map(|i| match rng.next() % 8 {
            0 => Op::Remove(rng.next() % (BASE_N * 4)),
            1 => Op::Many(
                (0..(1 + rng.next() % 5))
                    .map(|_| (rng.next() % (BASE_N * 8), rng.next()))
                    .collect(),
            ),
            _ => Op::Insert(rng.next() % (BASE_N * 8), i as u64),
        })
        .collect()
}

/// Byte offsets of record boundaries in `wal`, parsed from the record
/// headers: `boundaries[j]` is where record `j` starts; the final
/// element is the file length.
fn record_boundaries(wal: &[u8]) -> Vec<usize> {
    let mut bounds = vec![WAL_HEADER];
    let mut pos = WAL_HEADER;
    while pos < wal.len() {
        let len = u32::from_le_bytes(wal[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 8 + len;
        bounds.push(pos);
    }
    assert_eq!(pos, wal.len(), "trailing garbage in the synced WAL");
    bounds
}

/// Plants `snapshot` + `wal` as generation-0 files of a scratch shard
/// directory, recovers, and asserts the result equals the oracle after
/// `expect_ops` logged ops.
#[allow(clippy::too_many_arguments)] // flat args keep the battery's call sites readable
fn recover_and_check(
    scratch: &Path,
    cfg: &DurableConfig<FitingTreeBuilder>,
    snapshot: &[u8],
    wal: &[u8],
    oracle: &BTreeMap<u64, u64>,
    expect_ops: usize,
    expect_truncated: bool,
    what: &str,
) {
    std::fs::write(scratch.join("snapshot.000000"), snapshot).unwrap();
    std::fs::write(scratch.join("wal.000000"), wal).unwrap();
    let (back, info) = Durable::open_shard(cfg, scratch)
        .unwrap_or_else(|e| panic!("recovery failed ({what}): {e}"));
    assert_eq!(info.replayed, expect_ops, "replayed op count ({what})");
    assert_eq!(
        info.wal_truncated, expect_truncated,
        "truncation flag ({what})"
    );
    assert_eq!(back.len(), oracle.len(), "recovered len ({what})");
    let got: Vec<(u64, u64)> = back.range(..).collect();
    let want: Vec<(u64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
    assert_eq!(got, want, "recovered contents ({what})");
}

#[test]
fn crash_battery_is_prefix_consistent_against_oracle() {
    let root = std::env::temp_dir().join(format!("fiting-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let cfg = DurableConfig::new(&root, FsyncPolicy::Off, FitingTreeBuilder::new(64)).unwrap();
    let mut rng = Lcg(0xF17E_7123);

    // Seed shard + op stream; sync so every record is in the file.
    let base: Vec<(u64, u64)> = (0..BASE_N).map(|k| (k * 3, k)).collect();
    let mut idx: Durable = fiting::BuildableIndex::build_sorted(&cfg, base.clone()).unwrap();
    let ops = gen_ops(stress_ops(), &mut rng);
    for op in &ops {
        op.apply_index(&mut idx);
    }
    idx.sync();
    let shard_dir = idx.shard_dir().to_path_buf();
    drop(idx);

    let snapshot = std::fs::read(shard_dir.join("snapshot.000000")).unwrap();
    let wal = std::fs::read(shard_dir.join("wal.000000")).unwrap();
    let bounds = record_boundaries(&wal);
    assert_eq!(bounds.len(), ops.len() + 1, "one WAL record per op");

    // Oracle states after each op prefix.
    let mut oracles: Vec<BTreeMap<u64, u64>> = Vec::with_capacity(ops.len() + 1);
    oracles.push(base.iter().copied().collect());
    for op in &ops {
        let mut next = oracles.last().unwrap().clone();
        op.apply_oracle(&mut next);
        oracles.push(next);
    }

    let scratch = root.join("scratch").join("shard-000000");
    std::fs::create_dir_all(&scratch).unwrap();
    let mut points = 0usize;

    // 1. Truncate at every record boundary: clean prefix, no flag.
    for (j, &cut) in bounds.iter().enumerate() {
        recover_and_check(
            &scratch,
            &cfg,
            &snapshot,
            &wal[..cut],
            &oracles[j],
            j,
            false,
            &format!("boundary cut after record {j}"),
        );
        points += 1;
    }

    // 2. Truncate mid-record: the torn record is discarded.
    for j in 0..ops.len() {
        let (start, end) = (bounds[j], bounds[j + 1]);
        for cut in [start + 1, start + 4, (start + end) / 2, end - 1] {
            if cut <= start || cut >= end {
                continue;
            }
            recover_and_check(
                &scratch,
                &cfg,
                &snapshot,
                &wal[..cut],
                &oracles[j],
                j,
                true,
                &format!("torn record {j} at byte {cut}"),
            );
            points += 1;
        }
    }

    // 3. Flip one byte, sweeping the whole file (header included).
    // A header flip voids the log (snapshot-only recovery); a record
    // flip must be caught by that record's CRC/shape check.
    let mut pos = 0usize;
    while pos < wal.len() {
        let mut damaged = wal.clone();
        damaged[pos] ^= 1 << (rng.next() % 8);
        let expect = if pos < WAL_HEADER {
            0
        } else {
            bounds.partition_point(|&b| b <= pos) - 1
        };
        recover_and_check(
            &scratch,
            &cfg,
            &snapshot,
            &damaged,
            &oracles[expect],
            expect,
            true,
            &format!("byte flip at {pos}"),
        );
        points += 1;
        pos += 1 + (rng.next() % 4) as usize;
    }

    assert!(
        points >= 1_000,
        "battery covered only {points} crash points (< 1000)"
    );
    std::fs::remove_dir_all(&root).unwrap();
}

/// The same invariant end to end through the service layer: a durable
/// sharded service is killed (files copied mid-life, simulating a
/// crash after the last group commit), and the store reopens to
/// exactly the synced state.
#[test]
fn durable_service_reopens_to_last_group_commit() {
    use fiting::{open_sharded, DurabilityConfig, IndexService, ServiceConfig, ShardedIndex};

    let root = std::env::temp_dir().join(format!("fiting-crash-svc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let cfg = DurableConfig::new(&root, FsyncPolicy::Off, FitingTreeBuilder::new(64)).unwrap();

    let index: ShardedIndex<u64, u64, Durable> =
        ShardedIndex::bulk_load(&cfg, 4, (0..4_000u64).map(|k| (k * 2, k)).collect()).unwrap();
    let svc =
        IndexService::start_durable(index, ServiceConfig::default(), DurabilityConfig::default());
    let client = svc.client();
    let mut tickets = Vec::new();
    for k in 0..500u64 {
        tickets.push(client.insert(k * 16 + 1, k));
    }
    let removed = client.remove(0);
    for t in tickets {
        t.wait().unwrap();
    }
    assert_eq!(removed.wait(), Ok(Some(0)));
    let expect_len = svc.index().len();
    drop(client);
    let _ = svc.shutdown(); // final sync_all: everything is in the logs

    let (back, report) = open_sharded::<u64, u64, FitingTree<u64, u64>>(&cfg).unwrap();
    assert_eq!(report.shards.len(), 4);
    assert!(report.skipped.is_empty());
    assert!(report.shards.iter().any(|r| r.replayed > 0));
    assert_eq!(back.len(), expect_len);
    assert_eq!(back.get(&1), Some(0));
    assert_eq!(back.get(&0), None);
    assert_eq!(back.get(&2), Some(1));
    std::fs::remove_dir_all(&root).unwrap();
}

/// Recovery works even when the WAL file is missing entirely (crash
/// between snapshot rename and log creation).
#[test]
fn missing_wal_recovers_snapshot_only() {
    let root = std::env::temp_dir().join(format!("fiting-crash-nowal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let cfg = DurableConfig::new(&root, FsyncPolicy::Off, FitingTreeBuilder::new(64)).unwrap();
    let mut idx: Durable =
        fiting::BuildableIndex::build_sorted(&cfg, (0..100u64).map(|k| (k, k)).collect()).unwrap();
    idx.insert(777, 7);
    idx.sync();
    let dir: PathBuf = idx.shard_dir().to_path_buf();
    drop(idx);

    std::fs::remove_file(dir.join("wal.000000")).unwrap();
    let (back, info) = Durable::open_shard(&cfg, &dir).unwrap();
    assert_eq!(info.replayed, 0);
    assert!(!info.wal_truncated); // nothing discarded: there was no log
    assert_eq!(back.len(), 100);
    assert_eq!(back.get(&777), None); // the unlogged insert is gone with its log
    std::fs::remove_dir_all(&root).unwrap();
}
