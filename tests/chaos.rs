//! Chaos battery: seeded fault schedules + worker panics vs a
//! `BTreeMap` oracle of the acknowledged state.
//!
//! Three batteries, ≥ 500 distinct schedules at the default scale:
//!
//! * **A — shard storms** (`FITING_CHAOS_SEEDS`, default 400): one
//!   durable shard per seed behind a [`FaultIo`] following
//!   `FaultPlan::seeded(seed)`, driven through a mixed
//!   insert/remove/batch/sync/checkpoint/reload workload. Every op the
//!   store *acknowledged* (returned `Ok`) goes into the oracle; every
//!   refusal (`Err(Degraded)`) must leave the store untouched. Reads
//!   are probed mid-storm — degraded shards stay readable — and after
//!   the storm the harness disarms, reloads from disk, and requires
//!   the recovered state to equal the oracle **exactly**: no
//!   acknowledged write lost, no refused write resurrected.
//! * **B — rotation-step ENOSPC**: one targeted schedule per
//!   checkpoint-rotation step (tmp create/write/fsync, next-log
//!   create, rename, directory sync, old-generation delete), proving
//!   a failure at *any* step leaves the previous generation intact
//!   and readable, degrades the shard, and that the very next clean
//!   checkpoint heals it.
//! * **C — service storms** (¼ of the seed knob, min 110): a
//!   two-lane supervised durable service per seed, with seeded I/O
//!   faults *and* deterministic worker panics (a booby-trapped key per
//!   lane). Tickets resolving `Ok` form the oracle; `Canceled` point
//!   writes must NOT be applied (they were never executed);
//!   `Degraded`/`Canceled` cross-shard batches are the only uncertain
//!   keys. After the storm the harness disarms, waits for the
//!   supervisor + checkpoint coordinator to heal every lane and
//!   shard, round-trips a fresh probe write per lane, shuts down, and
//!   reopens the store from disk — the recovered state must match the
//!   oracle on every certain key.
//!
//! On any violation the failing schedule (seed + full injection log)
//! is written to `target/chaos/` so the exact run can be replayed.
//!
//! Scale knob: `FITING_CHAOS_SEEDS` (nightly CI raises it).

use fiting::storage::{
    DurableConfig, DurableIndex, FaultIo, FaultPlan, FsyncPolicy, InjectKind, IoOp, RetryPolicy,
};
use fiting::tree::{FitingTree, FitingTreeBuilder};
use fiting::{
    open_sharded, BuildableIndex, Degraded, DurabilityConfig, IndexService, LaneHealth,
    ServiceConfig, ShardHealth, ShardedIndex, SortedIndex, SupervisorConfig,
};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::RangeBounds;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

type Durable = DurableIndex<u64, u64, FitingTree<u64, u64>>;

fn seed_count() -> u64 {
    std::env::var("FITING_CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400)
}

fn scratch_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("fiting-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// Deterministic 64-bit LCG (Knuth's MMIX constants).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

/// Writes the failing schedule somewhere a human can replay it from,
/// then returns the message to panic with.
fn dump_schedule(battery: &str, seed: u64, io: &FaultIo, err: &str) -> String {
    let dir = Path::new("target").join("chaos");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("failure-{battery}-{seed}.txt"));
    let mut report = format!(
        "battery: {battery}\nseed: {seed}\nerror: {err}\ninjections ({}):\n",
        io.injection_count()
    );
    for line in io.injections() {
        report.push_str(&line);
        report.push('\n');
    }
    let _ = std::fs::write(&path, &report);
    format!(
        "battery {battery} seed {seed}: {err} (schedule dumped to {})",
        path.display()
    )
}

// ---------------------------------------------------------------- A --

/// One seeded storm against a single durable shard. `Err` carries a
/// human-readable violation; the caller dumps the schedule.
fn shard_storm(root: &Path, seed: u64, io: &FaultIo) -> Result<bool, String> {
    io.disarm(); // build under clean I/O; the storm starts after
    let fsync = match seed % 3 {
        0 => FsyncPolicy::Always,
        1 => FsyncPolicy::EveryN(3),
        _ => FsyncPolicy::Off,
    };
    let cfg = DurableConfig::with_io(
        root,
        fsync,
        FitingTreeBuilder::new(64),
        Arc::new(io.clone()),
        RetryPolicy::immediate(2),
    )
    .map_err(|e| format!("clean-io config failed: {e}"))?;
    let base: Vec<(u64, u64)> = (0..64u64).map(|k| (k * 5, k)).collect();
    let mut oracle: BTreeMap<u64, u64> = base.iter().copied().collect();
    let mut idx: Durable = BuildableIndex::build_sorted(&cfg, base)
        .map_err(|e| format!("clean-io build failed: {e:?}"))?;

    io.arm();
    let mut rng = Lcg(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut was_degraded = false;
    for step in 0..140u32 {
        match rng.next() % 100 {
            0..=39 => {
                let (k, v) = (rng.next() % 512, rng.next());
                match idx.try_insert(k, v) {
                    Ok(_) => {
                        oracle.insert(k, v);
                    }
                    Err(Degraded) => {
                        if idx.health() != ShardHealth::Degraded {
                            return Err(format!("step {step}: refusal while healthy"));
                        }
                        was_degraded = true;
                    }
                }
            }
            40..=54 => {
                let k = rng.next() % 512;
                match idx.try_remove(&k) {
                    Ok(prev) => {
                        if prev != oracle.remove(&k) {
                            return Err(format!("step {step}: remove({k}) returned wrong prev"));
                        }
                    }
                    Err(Degraded) => was_degraded = true,
                }
            }
            55..=69 => {
                let batch: Vec<(u64, u64)> = (0..1 + rng.next() % 6)
                    .map(|_| (rng.next() % 512, rng.next()))
                    .collect();
                match idx.try_insert_many(batch.clone()) {
                    Ok(_) => {
                        // Duplicate keys in one batch: last write wins
                        // (submission order), matching `insert_many`.
                        for (k, v) in batch {
                            oracle.insert(k, v);
                        }
                    }
                    Err(Degraded) => was_degraded = true,
                }
            }
            70..=79 => {
                let _ = idx.try_sync();
            }
            80..=87 => {
                let _ = idx.try_checkpoint();
            }
            88..=89 => {
                // Mid-storm resurrection: reload under live fire. The
                // carried-buffer handoff must keep every acked write.
                let _ = idx.reload();
            }
            _ => {
                // Read probe — degraded shards must still serve reads.
                let k = rng.next() % 512;
                if idx.get(&k).copied() != oracle.get(&k).copied() {
                    return Err(format!("step {step}: mid-storm read diverged at key {k}"));
                }
            }
        }
    }

    // Full mid-storm scan (degraded or not): memory == acked oracle.
    let got: Vec<(u64, u64)> = idx.range(..).collect();
    let want: Vec<(u64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
    if got != want {
        return Err("mid-storm scan diverged from oracle".to_string());
    }

    // Quiesce and recover from disk: the acknowledged state must be
    // exactly what comes back.
    io.disarm();
    if !idx.reload() {
        return Err("clean-io reload refused".to_string());
    }
    if idx.health() != ShardHealth::Healthy {
        return Err("shard still degraded after clean reload".to_string());
    }
    let got: Vec<(u64, u64)> = idx.range(..).collect();
    if got != want {
        return Err("recovered state diverged from acknowledged oracle".to_string());
    }
    Ok(was_degraded)
}

#[test]
fn battery_a_shard_storms_are_oracle_exact() {
    let root = scratch_root("shard");
    let seeds = seed_count();
    let mut degraded_seeds = 0u64;
    let mut injected = 0u64;
    for seed in 0..seeds {
        let dir = root.join(format!("seed-{seed}"));
        let io = FaultIo::new(FaultPlan::seeded(seed));
        match shard_storm(&dir, seed, &io) {
            Ok(was_degraded) => degraded_seeds += u64::from(was_degraded),
            Err(e) => panic!("{}", dump_schedule("shard", seed, &io, &e)),
        }
        injected += io.injection_count();
        let _ = std::fs::remove_dir_all(&dir);
    }
    // The storm must be real: faults actually fired, and a healthy
    // fraction of seeds tripped degraded mode at least once.
    assert!(
        injected > seeds,
        "only {injected} injections across {seeds} seeds"
    );
    assert!(
        degraded_seeds > seeds / 20,
        "only {degraded_seeds}/{seeds} seeds ever degraded — storm too quiet"
    );
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------- B --

/// ENOSPC at one specific checkpoint-rotation step: the previous
/// generation must survive, the shard degrades (unless the step is the
/// best-effort old-generation GC), and the next clean checkpoint
/// heals.
fn rotation_step_storm(root: &Path, step: usize, op: IoOp, pattern: &str, best_effort: bool) {
    let io = FaultIo::quiet();
    let cfg = DurableConfig::with_io(
        root,
        FsyncPolicy::Always,
        FitingTreeBuilder::new(64),
        Arc::new(io.clone()),
        RetryPolicy::none(),
    )
    .unwrap();
    let mut idx: Durable =
        BuildableIndex::build_sorted(&cfg, (0..128u64).map(|k| (k * 3, k)).collect()).unwrap();
    assert_eq!(idx.try_insert(7, 70), Ok(None));
    assert_eq!(idx.try_sync(), Ok(true));

    io.fail_nth(op, pattern, 1, InjectKind::Enospc, false);
    let shard = idx.shard_dir().to_path_buf();
    if best_effort {
        // GC of the old generation is advisory: the rotation itself
        // must still succeed and stay healthy.
        assert_eq!(
            idx.try_checkpoint(),
            Ok(true),
            "step {step}: {op:?} {pattern}"
        );
        assert_eq!(idx.health(), ShardHealth::Healthy);
        assert_eq!(idx.generation(), 1);
    } else {
        assert_eq!(
            idx.try_checkpoint(),
            Err(Degraded),
            "step {step}: {op:?} {pattern}"
        );
        assert_eq!(idx.health(), ShardHealth::Degraded);
        // Previous generation intact and still the live one.
        assert_eq!(idx.generation(), 0);
        assert!(
            shard.join("snapshot.000000").exists(),
            "step {step} lost the old snapshot"
        );
        assert!(
            shard.join("wal.000000").exists(),
            "step {step} lost the old log"
        );
        assert!(
            !shard.join("snapshot.000001").exists(),
            "step {step} published a broken snapshot"
        );
        // Degraded ⇒ reads still served, writes refused typed.
        assert_eq!(idx.get(&7), Some(&70));
        assert_eq!(idx.try_insert(10, 100), Err(Degraded));
        // The injected fault is spent: the re-armed checkpoint heals.
        assert_eq!(
            idx.try_checkpoint(),
            Ok(true),
            "step {step}: retry after spent fault"
        );
        assert_eq!(idx.health(), ShardHealth::Healthy);
        assert_eq!(idx.generation(), 1);
    }
    // Writes flow again and the whole state survives a clean reload.
    assert_eq!(idx.try_insert(11, 110), Ok(None));
    assert!(idx.reload());
    assert_eq!(idx.get(&7), Some(&70));
    assert_eq!(idx.get(&11), Some(&110));
    assert_eq!(
        idx.get(&10),
        None,
        "a refused write came back from the dead"
    );
    assert_eq!(idx.len(), 130);
}

#[test]
fn battery_b_enospc_at_every_rotation_step() {
    let root = scratch_root("rotation");
    // Every I/O the rotation performs, in order; the last two are the
    // best-effort old-generation GC.
    let steps: Vec<(IoOp, &str, bool)> = vec![
        (IoOp::Create, "snapshot.tmp", false),
        (IoOp::Write, "snapshot.tmp", false),
        (IoOp::Fsync, "snapshot.tmp", false),
        (IoOp::Create, "wal.000001", false),
        (IoOp::Fsync, "wal.000001", false),
        (IoOp::Rename, "snapshot.tmp", false),
        (IoOp::SyncDir, "shard-", false),
        (IoOp::RemoveFile, "snapshot.000000", true),
        (IoOp::RemoveFile, "wal.000000", true),
    ];
    for (step, (op, pattern, best_effort)) in steps.into_iter().enumerate() {
        let dir = root.join(format!("step-{step}"));
        rotation_step_storm(&dir, step, op, pattern, best_effort);
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------- C --

/// Keys booby-trapped to panic the worker thread that touches them —
/// one per lane of the two-lane service (the base data splits at
/// ~1000, so 998 routes to lane 0 and 1998 to lane 1; both are ≡ 2
/// (mod 4), so neither collides with the even base keys (multiples of
/// 4) nor the odd workload keys).
const BOOMS: [u64; 2] = [998, 1998];

/// A durable shard with a tripwire: inserting a boom key panics
/// *before* anything is logged or applied — modelling a worker hitting
/// a poison pill mid-batch. Everything else forwards to the wrapped
/// [`Durable`], including the whole degraded/reload vocabulary.
struct PanicOn(Durable);

impl SortedIndex<u64, u64> for PanicOn {
    type RangeIter<'a> = <Durable as SortedIndex<u64, u64>>::RangeIter<'a>;

    fn name(&self) -> &'static str {
        "PanicOn"
    }

    fn get(&self, key: &u64) -> Option<&u64> {
        self.0.get(key)
    }

    fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        assert!(!BOOMS.contains(&key), "boom: poisoned key {key}");
        self.0.insert(key, value)
    }

    fn remove(&mut self, key: &u64) -> Option<u64> {
        self.0.remove(key)
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn size_bytes(&self) -> usize {
        self.0.size_bytes()
    }

    fn range<R: RangeBounds<u64>>(&self, range: R) -> Self::RangeIter<'_> {
        self.0.range(range)
    }

    fn insert_many(&mut self, batch: Vec<(u64, u64)>) -> usize {
        assert!(
            !batch.iter().any(|(k, _)| BOOMS.contains(k)),
            "boom: poisoned key in batch"
        );
        self.0.insert_many(batch)
    }

    fn wal_bytes(&self) -> usize {
        self.0.wal_bytes()
    }

    fn sync(&mut self) -> bool {
        self.0.sync()
    }

    fn checkpoint(&mut self) -> bool {
        self.0.checkpoint()
    }

    fn try_insert(&mut self, key: u64, value: u64) -> Result<Option<u64>, Degraded> {
        assert!(!BOOMS.contains(&key), "boom: poisoned key {key}");
        self.0.try_insert(key, value)
    }

    fn try_remove(&mut self, key: &u64) -> Result<Option<u64>, Degraded> {
        self.0.try_remove(key)
    }

    fn try_insert_many(&mut self, batch: Vec<(u64, u64)>) -> Result<usize, Degraded> {
        assert!(
            !batch.iter().any(|(k, _)| BOOMS.contains(k)),
            "boom: poisoned key in batch"
        );
        self.0.try_insert_many(batch)
    }

    fn try_sync(&mut self) -> Result<bool, Degraded> {
        self.0.try_sync()
    }

    fn try_checkpoint(&mut self) -> Result<bool, Degraded> {
        self.0.try_checkpoint()
    }

    fn health(&self) -> ShardHealth {
        self.0.health()
    }

    fn io_retries(&self) -> u64 {
        self.0.io_retries()
    }

    fn reload(&mut self) -> bool {
        self.0.reload()
    }
}

impl BuildableIndex<u64, u64> for PanicOn {
    type Config = <Durable as BuildableIndex<u64, u64>>::Config;
    type BuildError = <Durable as BuildableIndex<u64, u64>>::BuildError;

    fn build_sorted(
        config: &Self::Config,
        sorted: Vec<(u64, u64)>,
    ) -> Result<Self, Self::BuildError> {
        Durable::build_sorted(config, sorted).map(PanicOn)
    }
}

/// Everything one service storm learned, for the final verdict.
struct StormLedger {
    /// Keys whose last outcome was an acknowledged write (`Ok`) — the
    /// oracle: each must hold exactly this value after recovery.
    acked: BTreeMap<u64, u64>,
    /// Keys last touched by a refused or canceled cross-shard batch —
    /// partially applied by design, excluded from the verdict.
    uncertain: BTreeSet<u64>,
    /// Fresh keys whose only op was a canceled/refused *point* write —
    /// never executed, so they must NOT exist after recovery.
    never_applied: BTreeSet<u64>,
}

/// One seeded storm against a two-lane supervised durable service with
/// worker panics. `Err` carries a violation; the caller dumps the
/// schedule.
fn service_storm(root: &Path, seed: u64, io: &FaultIo) -> Result<(u64, u64), String> {
    io.disarm();
    let cfg = DurableConfig::with_io(
        root,
        FsyncPolicy::EveryN(2),
        FitingTreeBuilder::new(64),
        Arc::new(io.clone()),
        RetryPolicy::immediate(2),
    )
    .map_err(|e| format!("clean-io config failed: {e}"))?;
    // Even base keys (multiples of 4) spanning 0..2000: two shards
    // split at ~1000.
    let base: Vec<(u64, u64)> = (0..500u64).map(|k| (k * 4, k)).collect();
    let index: ShardedIndex<u64, u64, PanicOn> = ShardedIndex::bulk_load(&cfg, 2, base.clone())
        .map_err(|e| format!("clean-io bulk load failed: {e:?}"))?;
    let svc = IndexService::start_supervised(
        index,
        ServiceConfig {
            queue_capacity: 64,
            max_batch: 16,
            batch_window: Duration::from_micros(200),
        },
        DurabilityConfig {
            sync_each_batch: true,
            checkpoint_interval: Duration::from_millis(3),
            checkpoint_wal_bytes: 4 << 10,
        },
        SupervisorConfig {
            interval: Duration::from_millis(1),
            max_lane_restarts: 1_000,
        },
    );
    let client = svc.client();

    let mut ledger = StormLedger {
        acked: base.into_iter().collect(),
        uncertain: BTreeSet::new(),
        never_applied: BTreeSet::new(),
    };
    let mut rng = Lcg(seed ^ 0xC0FF_EE00_DEAD_BEEF);
    let mut fresh = 0u64; // odd workload keys: 1, 3, 5, … (span lanes)
    let mut next_key = || {
        fresh += 2;
        fresh - 1
    };

    io.arm();
    enum Pending {
        Insert(u64, u64, fiting::Ticket<Option<u64>>),
        Remove(u64, fiting::Ticket<Option<u64>>),
        Batch(Vec<(u64, u64)>, fiting::Ticket<usize>),
        Boom(fiting::Ticket<Option<u64>>),
    }
    for _wave in 0..8u32 {
        let mut wave: Vec<Pending> = Vec::new();
        for _ in 0..24u32 {
            match rng.next() % 100 {
                // One poison pill per ~24 ops, alternating lanes.
                0..=3 => {
                    let boom = BOOMS[(rng.next() % 2) as usize];
                    wave.push(Pending::Boom(client.insert(boom, 0)));
                }
                4..=53 => {
                    let (k, v) = (next_key(), rng.next());
                    wave.push(Pending::Insert(k, v, client.insert(k, v)));
                }
                54..=69 => {
                    // Remove a key the ledger is certain about.
                    let candidates: Vec<u64> = ledger.acked.keys().copied().collect();
                    let k = candidates[(rng.next() as usize) % candidates.len()];
                    wave.push(Pending::Remove(k, client.remove(k)));
                }
                _ => {
                    let batch: Vec<(u64, u64)> = (0..4).map(|_| (next_key(), rng.next())).collect();
                    wave.push(Pending::Batch(batch.clone(), client.insert_many(batch)));
                }
            }
        }
        // Wait the wave out; classify every outcome. (Waves keep at
        // most one in-flight op per key, so per-key order is exact.)
        for pending in wave {
            match pending {
                Pending::Insert(k, v, t) => match t.wait() {
                    Ok(_) => {
                        ledger.acked.insert(k, v);
                    }
                    Err(_) => {
                        // Canceled or refused point write on a fresh
                        // key: never executed, must stay absent.
                        ledger.never_applied.insert(k);
                    }
                },
                // A refused/canceled remove was not applied: the
                // ledger keeps the key.
                Pending::Remove(k, t) => {
                    if let Ok(prev) = t.wait() {
                        let want = ledger.acked.remove(&k);
                        if prev != want {
                            return Err(format!(
                                "remove({k}) acked {prev:?}, oracle held {want:?}"
                            ));
                        }
                    }
                }
                Pending::Batch(batch, t) => match t.wait() {
                    Ok(_) => {
                        for (k, v) in batch {
                            ledger.acked.insert(k, v);
                        }
                    }
                    Err(_) => {
                        // Cross-shard batch: may have landed on some
                        // lanes before a refusal/panic on another.
                        for (k, _) in batch {
                            ledger.acked.remove(&k);
                            ledger.uncertain.insert(k);
                        }
                    }
                },
                Pending::Boom(t) => {
                    if t.wait().is_ok() {
                        return Err("boom key insert was acknowledged".to_string());
                    }
                }
            }
        }
    }

    // Quiesce: no more faults; the supervisor resurrects poisoned
    // lanes and the checkpoint coordinator heals degraded shards. A
    // degraded *lane* only reports healthy again once a write batch
    // goes through cleanly, so keep a trickle of pump writes flowing
    // (one per lane, reusing two dedicated keys) while waiting.
    io.disarm();
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut pump_round = 0u64;
    loop {
        let stats = svc.stats();
        let lanes_ok = stats.lanes.iter().all(|l| l.health == LaneHealth::Healthy);
        if lanes_ok && !stats.is_degraded() {
            break;
        }
        if Instant::now() > deadline {
            return Err(format!(
                "service did not heal: lanes {:?}, degraded {}",
                stats.lanes.iter().map(|l| l.health).collect::<Vec<_>>(),
                stats.is_degraded()
            ));
        }
        pump_round += 1;
        for pump in [995u64, 2_995] {
            // Acked pumps update the ledger; refused/canceled ones
            // were never executed and leave the previous value.
            if client.insert(pump, pump_round).wait().is_ok() {
                ledger.acked.insert(pump, pump_round);
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    // A resurrected, healed service must round-trip fresh writes on
    // both lanes (997 → lane 0, 2 997 → lane 1; odd keys the workload
    // counter cannot plausibly reach). The stats snapshot can race the
    // final poison — a worker resolves its batch's tickets while still
    // unwinding, before the lane flips Poisoned — so the probe retries
    // like a real client would; a refused/canceled point write was
    // never applied, making the retry safe.
    for probe in [997u64, 2_997] {
        let v = probe * 10;
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            match client.insert(probe, v).wait() {
                Ok(_) => {
                    ledger.acked.insert(probe, v);
                    break;
                }
                Err(e) if Instant::now() > deadline => {
                    let stats = svc.stats();
                    return Err(format!(
                        "healed service kept refusing probe {probe}: {e} (lanes {:?}, \
                         restarts {:?}, panics {:?}, degraded {})",
                        stats.lanes.iter().map(|l| l.health).collect::<Vec<_>>(),
                        stats.lanes.iter().map(|l| l.restarts).collect::<Vec<_>>(),
                        stats.lanes.iter().map(|l| l.panics).collect::<Vec<_>>(),
                        stats.is_degraded()
                    ));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
        match client.get(probe).wait() {
            Ok(Some(got)) if got == v => {}
            other => return Err(format!("probe {probe} read back {other:?}")),
        }
    }

    let stats = svc.stats();
    let restarts: u64 = stats.lanes.iter().map(|l| l.restarts).sum();
    let panics: u64 = stats.lanes.iter().map(|l| l.panics).sum();
    let checkpoint_failures = stats.checkpoint_failures;
    if panics != restarts {
        return Err(format!("{panics} panics but {restarts} resurrections"));
    }

    // Shutdown drains, final-syncs under clean I/O, and the store must
    // reopen from disk to exactly the certain ledger.
    drop(client);
    let _ = svc.shutdown();
    let (back, report) = open_sharded::<u64, u64, FitingTree<u64, u64>>(&cfg)
        .map_err(|e| format!("clean-io reopen failed: {e}"))?;
    if !report.skipped.is_empty() {
        return Err(format!("reopen skipped {} shards", report.skipped.len()));
    }
    for (&k, &v) in &ledger.acked {
        if ledger.uncertain.contains(&k) {
            continue;
        }
        if back.get(&k) != Some(v) {
            return Err(format!("acked write {k}={v} lost (got {:?})", back.get(&k)));
        }
    }
    for &k in &ledger.never_applied {
        if !ledger.uncertain.contains(&k) && back.get(&k).is_some() {
            return Err(format!("canceled write {k} rose from the dead"));
        }
    }
    for k in BOOMS {
        if back.get(&k).is_some() {
            return Err(format!("boom key {k} was applied"));
        }
    }
    Ok((restarts, checkpoint_failures))
}

/// Deterministic companion to the seeded storms: force the checkpoint
/// coordinator into exactly one rotation failure and prove it reaches
/// [`fiting::ServiceStats::checkpoint_failures`], then heals. The
/// seeded schedules usually produce coordinator faults too, but
/// whether one lands inside a checkpoint window is schedule luck — the
/// propagation guarantee is pinned here with a targeted injection.
fn forced_checkpoint_failure(root: &Path, io: &FaultIo) -> Result<(), String> {
    let cfg = DurableConfig::with_io(
        root,
        FsyncPolicy::Always,
        FitingTreeBuilder::new(64),
        Arc::new(io.clone()),
        RetryPolicy::none(),
    )
    .map_err(|e| format!("config failed: {e}"))?;
    let base: Vec<(u64, u64)> = (0..200u64).map(|k| (k * 2, k)).collect();
    let index: ShardedIndex<u64, u64, Durable> =
        ShardedIndex::bulk_load(&cfg, 2, base).map_err(|e| format!("bulk load failed: {e:?}"))?;
    let svc = IndexService::start_supervised(
        index,
        ServiceConfig {
            queue_capacity: 64,
            max_batch: 16,
            batch_window: Duration::from_micros(200),
        },
        DurabilityConfig {
            sync_each_batch: true,
            // Threshold 0: every coordinator pass checkpoints every
            // shard, so the targeted fault below fires on the very
            // first pass — no schedule luck involved.
            checkpoint_interval: Duration::from_millis(1),
            checkpoint_wal_bytes: 0,
        },
        SupervisorConfig {
            interval: Duration::from_millis(1),
            max_lane_restarts: 10,
        },
    );
    let client = svc.client();
    io.fail_nth(IoOp::Create, "snapshot.tmp", 1, InjectKind::Enospc, false);

    // The one-shot fault degrades one shard and bumps the counter; the
    // coordinator's next pass retries the degraded shard and heals it.
    let deadline = Instant::now() + Duration::from_secs(20);
    while svc.stats().checkpoint_failures == 0 {
        if Instant::now() > deadline {
            let _ = svc.shutdown();
            return Err("forced rotation fault never reached ServiceStats".into());
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    while svc.stats().is_degraded() {
        if Instant::now() > deadline {
            let _ = svc.shutdown();
            return Err("shard stayed degraded after the one-shot fault".into());
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    // Healed service still round-trips writes.
    client
        .insert(9_001, 1)
        .wait()
        .map_err(|e| format!("post-heal write refused: {e}"))?;
    match client.get(9_001).wait() {
        Ok(Some(1)) => {}
        other => return Err(format!("post-heal read back {other:?}")),
    }
    drop(client);
    let _ = svc.shutdown();
    Ok(())
}

#[test]
fn battery_c_service_storms_keep_every_acknowledged_write() {
    let root = scratch_root("service");
    let seeds = (seed_count() / 4).max(110);
    let mut total_restarts = 0u64;
    for seed in 0..seeds {
        let dir = root.join(format!("seed-{seed}"));
        let io = FaultIo::new(FaultPlan::seeded(seed ^ 0x5EED_CAFE));
        match service_storm(&dir, seed, &io) {
            Ok((restarts, _ckpt_failures)) => total_restarts += restarts,
            Err(e) => panic!("{}", dump_schedule("service", seed, &io, &e)),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    // The storm must be real: poison pills actually fired and lanes
    // actually came back.
    assert!(
        total_restarts >= seeds,
        "only {total_restarts} lane resurrections across {seeds} storms"
    );
    // Checkpoint-failure propagation is pinned deterministically — the
    // seeded storms only hit the coordinator when the schedule happens
    // to intersect a checkpoint window.
    let dir = root.join("forced-checkpoint");
    let io = FaultIo::quiet();
    if let Err(e) = forced_checkpoint_failure(&dir, &io) {
        panic!("{}", dump_schedule("service-forced", 0, &io, &e));
    }
    let _ = std::fs::remove_dir_all(&root);
}
