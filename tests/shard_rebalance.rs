//! Skew-stress coverage for online shard rebalancing: bulk-load a
//! uniform key set, append a hot tail (the paper's IoT/timestamp
//! shape: every new key larger than every loaded one), and assert
//!
//! * post-rebalance `shard_stats` imbalance drops back under the
//!   policy threshold (the acceptance gate is max/mean ≤ 2×, vs
//!   unbounded pile-up on the last shard without rebalancing), and
//! * a concurrent reader sees **every** key throughout — the
//!   linearizable no-lost-keys check: a key that has been inserted
//!   (and never removed) must be visible to every subsequent `get`,
//!   no matter how many splits/merges run in between.
//!
//! Exercises both the direct `ShardedIndex` + `Rebalancer` path and
//! the full service path (`IndexService::start_rebalancing`).

use fiting::index_api::{RebalanceOutcome, RebalancePolicy, Rebalancer, ShardedIndex};
use fiting::service::ServiceConfig;
use fiting::tree::{FitingService, FitingTree, FitingTreeBuilder};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

type Idx = ShardedIndex<u64, u64, FitingTree<u64, u64>>;
type Reb = Rebalancer<u64, u64, FitingTree<u64, u64>>;

const SHARDS: usize = 4;
const BULK: u64 = 20_000;

/// Appended hot-tail size: `4 × FITING_STRESS_OPS` (the same knob the
/// linearizability stress honors), floored at the historical 40 000
/// appends. The knob only scales *up* (the nightly CI job raises it
/// for a longer soak): below ~4 000 appends the skew never pushes the
/// hot shard strictly past the 1.5× split threshold (4·(5 000 + T) /
/// (20 000 + T) > 1.5 requires T > 4 000), so a small stress value
/// would turn the "splits must fire" assertions into guaranteed
/// failures rather than a cheaper run.
fn tail_len() -> u64 {
    std::env::var("FITING_STRESS_OPS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(40_000, |ops| (ops * 4).max(40_000))
}

/// Uniformly spaced bulk pairs: keys 0, 10, 20, …
fn bulk_pairs() -> Vec<(u64, u64)> {
    (0..BULK).map(|k| (k * 10, k)).collect()
}

/// Hot-tail key: appended past the bulk maximum, densely packed.
fn tail_key(i: u64) -> u64 {
    BULK * 10 + i
}

fn prompt_policy() -> RebalancePolicy {
    RebalancePolicy {
        split_imbalance: 1.5,
        trigger_steps: 1,
        cooldown_steps: 0,
        min_split_entries: 1_024,
        min_reservoir_samples: 8,
        ..RebalancePolicy::default()
    }
}

fn imbalance(lens: &[usize]) -> f64 {
    let total: usize = lens.iter().sum();
    let mean = total as f64 / lens.len() as f64;
    *lens.iter().max().unwrap() as f64 / mean
}

#[test]
fn skew_stress_direct_rebalance_drops_imbalance_no_lost_keys() {
    let config = FitingTreeBuilder::new(64);
    let index: Idx = ShardedIndex::bulk_load(&config, SHARDS, bulk_pairs()).unwrap();
    let mut rebalancer: Reb = Rebalancer::new(config, prompt_policy());
    let sampler = rebalancer.sampler();

    // Concurrent readers: every bulk key, plus every appended key the
    // writer has published as durable, must always be visible.
    let stop = Arc::new(AtomicBool::new(false));
    let appended = Arc::new(AtomicU64::new(0)); // tail keys 0..appended are in
    let mut readers = Vec::new();
    for t in 0..2u64 {
        let index = index.clone();
        let stop = Arc::clone(&stop);
        let appended = Arc::clone(&appended);
        readers.push(thread::spawn(move || {
            let mut checks = 0u64;
            // At least one full pass even if the writer outpaces this
            // thread's first scheduling.
            loop {
                for k in (t..BULK).step_by(101) {
                    assert_eq!(index.get(&(k * 10)), Some(k), "lost bulk key {}", k * 10);
                    checks += 1;
                }
                let durable = appended.load(Ordering::Acquire);
                for i in (0..durable).step_by(97) {
                    let k = tail_key(i);
                    assert_eq!(index.get(&k), Some(k), "lost appended key {k}");
                    checks += 1;
                }
                if stop.load(Ordering::Acquire) {
                    return checks;
                }
            }
        }));
    }

    // Append-skew writer: everything lands past the last boundary, in
    // batches, stepping the rebalancer as it goes (a coordinator-less
    // embedder's maintenance loop).
    let mut splits = 0;
    let tail = tail_len();
    for batch in 0..(tail / 1_000) {
        let keys: Vec<(u64, u64)> = (batch * 1_000..(batch + 1) * 1_000)
            .map(|i| (tail_key(i), tail_key(i)))
            .collect();
        sampler.observe_all(keys.iter().map(|&(k, _)| k));
        index.insert_many(keys);
        appended.store((batch + 1) * 1_000, Ordering::Release);
        if let RebalanceOutcome::Split { .. } = rebalancer.step(&index) {
            splits += 1;
        }
    }
    // Let the policy settle whatever imbalance the last batch left.
    for _ in 0..32 {
        if rebalancer.step(&index) == RebalanceOutcome::Idle {
            break;
        }
    }
    stop.store(true, Ordering::Release);
    for r in readers {
        assert!(r.join().unwrap() > 0, "reader made progress");
    }

    assert!(splits >= 1, "append skew must trigger splits");
    assert!(rebalancer.stats().splits >= splits as u64);
    assert!(rebalancer.stats().moved_keys > 0);
    let lens = index.shard_lens();
    assert!(lens.len() > SHARDS, "shard count grew: {lens:?}");
    let imb = imbalance(&lens);
    assert!(
        imb <= prompt_policy().split_imbalance + 0.5,
        "post-rebalance imbalance {imb:.2} still above threshold: {lens:?}"
    );
    // Nothing lost, nothing duplicated.
    assert_eq!(index.len(), (BULK + tail) as usize);
    let all = index.range_collect(..);
    assert_eq!(all.len(), (BULK + tail) as usize);
    assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "keys stay sorted");
}

#[test]
fn skew_stress_service_rebalances_under_pipelined_load() {
    let config = FitingTreeBuilder::new(64);
    let index: Idx = ShardedIndex::bulk_load(&config, SHARDS, bulk_pairs()).unwrap();
    let rebalancer: Reb = Rebalancer::new(config, prompt_policy());
    let service: FitingService<u64, u64> = FitingService::start_rebalancing(
        index,
        ServiceConfig::default(),
        rebalancer,
        Duration::from_millis(1),
    );

    // Reader client alongside the writer: bulk keys must never miss.
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let client = service.client();
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut checks = 0u64;
            loop {
                for k in (0..BULK).step_by(211) {
                    assert_eq!(
                        client.get(k * 10).wait(),
                        Ok(Some(k)),
                        "lost bulk key {}",
                        k * 10
                    );
                    checks += 1;
                }
                if stop.load(Ordering::Acquire) {
                    return checks;
                }
            }
        })
    };

    let client = service.client();
    let tail = tail_len();
    for batch in 0..(tail / 1_000) {
        let keys: Vec<(u64, u64)> = (batch * 1_000..(batch + 1) * 1_000)
            .map(|i| (tail_key(i), tail_key(i)))
            .collect();
        client.insert_many(keys).wait().expect("service alive");
    }

    // The coordinator steps every 1ms; wait for it to catch up with
    // the skew, then for the layout to settle.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let stats = service.stats();
        let reb = stats.rebalance.expect("rebalancer attached");
        if reb.splits >= 1 && stats.imbalance() <= 2.0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "rebalancing never settled: {stats:?}"
        );
        thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, Ordering::Release);
    assert!(reader.join().unwrap() > 0);

    let stats = service.stats();
    assert!(stats.shards.len() > stats.lanes.len());
    assert!(stats.rebalance.unwrap().moved_keys > 0);

    // Every appended key visible through the pipeline.
    for i in (0..tail).step_by(503) {
        let k = tail_key(i);
        assert_eq!(client.get(k).wait(), Ok(Some(k)), "lost appended key {k}");
    }
    let index = service.shutdown();
    assert_eq!(index.len(), (BULK + tail) as usize);
}

#[test]
fn draining_a_region_merges_cold_shards_back() {
    let config = FitingTreeBuilder::new(64);
    let index: Idx = ShardedIndex::bulk_load(&config, 8, bulk_pairs()).unwrap();
    let mut rebalancer: Reb = Rebalancer::new(
        config,
        RebalancePolicy {
            trigger_steps: 1,
            cooldown_steps: 0,
            min_shards: 2,
            ..RebalancePolicy::default()
        },
    );

    // Hollow out two adjacent shards (keys are k*10; shard spans are
    // eighths of 0..200_000): leave a couple of sentinels behind.
    let (lo, hi) = (BULK / 8 * 2, BULK / 8 * 4); // positions 5000..10000
    for k in lo + 2..hi - 2 {
        index.remove(&(k * 10));
    }
    let before = index.shard_count();
    let mut merges = 0;
    for _ in 0..8 {
        match rebalancer.step(&index) {
            RebalanceOutcome::Merge { .. } => merges += 1,
            RebalanceOutcome::Idle => break,
            _ => {}
        }
    }
    assert!(merges >= 1, "cold adjacent shards must merge");
    assert!(index.shard_count() < before);
    // Sentinels and everything else survived the merges.
    assert_eq!(index.get(&(lo * 10)), Some(lo));
    assert_eq!(index.get(&((hi - 1) * 10)), Some(hi - 1));
    assert_eq!(
        index.len(),
        (BULK - (hi - 2 - (lo + 2))) as usize,
        "merges move keys, never drop them"
    );
}
