//! Differential battery for the rebuilt read hot path: the flat SoA
//! segment directory + branchless bounded window search, pitted against
//! a `BTreeMap` oracle across every `SearchStrategy`, on key shapes
//! chosen to stress the new machinery:
//!
//! * skewed `i³` keys — interpolation guesses are bad, brackets must
//!   still converge;
//! * lossy `to_f64` flat spans — keys above 2⁵³ whose projections
//!   collapse to the same `f64`, disabling interpolation seeding and
//!   producing zero-slope spans inside segments;
//! * post-remove pages — tombstoned slots must stay invisible to point
//!   and range lookups while every survivor remains findable within
//!   its (non-widened) window;
//! * mixed churn — inserts, removes, re-inserts (tombstone
//!   resurrection), and range scans interleaved, with
//!   `check_invariants` asserting after every phase that the flat
//!   directory exactly mirrors the mutation-side B+ tree and routes
//!   every live key to its segment.
//!
//! Plus the trace-level guard for the acceptance criterion: no lookup
//! on the hot path descends the pointer-based B+ tree.

use fiting::tree::{DirectoryPath, FitingTree, FitingTreeBuilder, SearchStrategy};
use std::collections::BTreeMap;

const STRATEGIES: [SearchStrategy; 4] = [
    SearchStrategy::Binary,
    SearchStrategy::Linear,
    SearchStrategy::Exponential,
    SearchStrategy::Interpolation,
];

/// Deterministic xorshift64* stream.
fn rng(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed.max(1);
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Key shapes the battery sweeps.
fn key_shapes() -> Vec<(&'static str, Vec<u64>)> {
    let skewed: Vec<u64> = (0..4_000u64).map(|i| i * i * i).collect();
    // Keys beyond f64's 53-bit mantissa: runs of 200 consecutive keys
    // project to (nearly) one f64 value, so slopes collapse and the
    // in-segment interpolation must fall back to bounded bisection.
    let lossy: Vec<u64> = (0..3_000u64)
        .map(|i| (1u64 << 60) + (i / 200) * (1 << 12) + (i % 200))
        .collect();
    let dense: Vec<u64> = (0..5_000).collect();
    let mut r = rng(0xDEAD_BEEF);
    let mut uniform: Vec<u64> = (0..5_000).map(|_| r() >> 1).collect();
    uniform.sort_unstable();
    uniform.dedup();
    vec![
        ("skewed-cubic", skewed),
        ("lossy-f64-span", lossy),
        ("dense", dense),
        ("uniform", uniform),
    ]
}

fn build(keys: &[u64], error: u64, strategy: SearchStrategy) -> FitingTree<u64, u64> {
    FitingTreeBuilder::new(error)
        .search_strategy(strategy)
        .bulk_load(keys.iter().map(|&k| (k, k.wrapping_mul(3))))
        .expect("strictly increasing keys")
}

#[test]
fn bulk_load_agrees_with_oracle_on_all_shapes_and_strategies() {
    for (shape, keys) in key_shapes() {
        let oracle: BTreeMap<u64, u64> = keys.iter().map(|&k| (k, k.wrapping_mul(3))).collect();
        for strategy in STRATEGIES {
            for error in [8u64, 64, 512] {
                let t = build(&keys, error, strategy);
                t.check_invariants()
                    .unwrap_or_else(|e| panic!("{shape}/{strategy:?}/e={error}: {e}"));
                for &k in &keys {
                    assert_eq!(
                        t.get(&k),
                        oracle.get(&k),
                        "{shape}/{strategy:?}/e={error} key {k}"
                    );
                    // Near-misses must not produce false hits.
                    for miss in [k.wrapping_sub(1), k + 1] {
                        if !oracle.contains_key(&miss) {
                            assert_eq!(t.get(&miss), None, "{shape}/{strategy:?} miss {miss}");
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn churn_agrees_with_oracle_across_strategies() {
    for (shape, keys) in key_shapes() {
        for strategy in STRATEGIES {
            let mut t = build(&keys, 32, strategy);
            let mut oracle: BTreeMap<u64, u64> =
                keys.iter().map(|&k| (k, k.wrapping_mul(3))).collect();
            let mut r = rng(0x5EED ^ keys.len() as u64);
            let key_domain: Vec<u64> = keys.iter().copied().chain((0..500).map(|_| r())).collect();
            for step in 0..4_000 {
                let k = key_domain[(r() as usize) % key_domain.len()];
                match r() % 4 {
                    0 | 1 => {
                        assert_eq!(
                            t.insert(k, step),
                            oracle.insert(k, step),
                            "{shape}/{strategy:?} insert {k}"
                        );
                    }
                    2 => {
                        assert_eq!(
                            t.remove(&k),
                            oracle.remove(&k),
                            "{shape}/{strategy:?} remove {k}"
                        );
                    }
                    _ => {
                        assert_eq!(t.get(&k), oracle.get(&k), "{shape}/{strategy:?} get {k}");
                    }
                }
                assert_eq!(t.len(), oracle.len());
            }
            t.check_invariants()
                .unwrap_or_else(|e| panic!("{shape}/{strategy:?} post-churn: {e}"));
            let got: Vec<(u64, u64)> = t.iter().map(|(k, v)| (*k, *v)).collect();
            let want: Vec<(u64, u64)> = oracle.into_iter().collect();
            assert_eq!(got, want, "{shape}/{strategy:?} full-scan divergence");
        }
    }
}

#[test]
fn post_remove_windows_find_every_survivor() {
    for (shape, keys) in key_shapes() {
        for strategy in STRATEGIES {
            let mut t = build(&keys, 16, strategy);
            // Remove two of every three keys: heavy tombstoning, several
            // re-segmentations (removed > seg_error / 2).
            let mut survivors = Vec::new();
            for (i, &k) in keys.iter().enumerate() {
                if i % 3 == 0 {
                    survivors.push(k);
                } else {
                    assert_eq!(t.remove(&k), Some(k.wrapping_mul(3)), "{shape} remove {k}");
                }
            }
            t.check_invariants()
                .unwrap_or_else(|e| panic!("{shape}/{strategy:?} post-remove: {e}"));
            for &k in &survivors {
                assert_eq!(
                    t.get(&k),
                    Some(&k.wrapping_mul(3)),
                    "{shape}/{strategy:?} survivor {k}"
                );
            }
            assert_eq!(t.len(), survivors.len());
            assert_eq!(t.iter().count(), survivors.len());
            // Removed keys must stay invisible to range scans too.
            let seen: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
            assert_eq!(seen, survivors, "{shape}/{strategy:?} scan sees tombstones");
        }
    }
}

#[test]
fn range_scans_agree_with_oracle_after_churn() {
    for (shape, keys) in key_shapes() {
        let mut t = build(&keys, 64, SearchStrategy::Binary);
        let mut oracle: BTreeMap<u64, u64> = keys.iter().map(|&k| (k, k.wrapping_mul(3))).collect();
        let mut r = rng(42);
        for step in 0..1_500u64 {
            let k = keys[(r() as usize) % keys.len()];
            if r().is_multiple_of(2) {
                assert_eq!(t.insert(k + 1, step), oracle.insert(k + 1, step));
            } else {
                assert_eq!(t.remove(&k), oracle.remove(&k));
            }
        }
        for _ in 0..200 {
            let a = keys[(r() as usize) % keys.len()];
            let b = keys[(r() as usize) % keys.len()];
            let (lo, hi) = (a.min(b), a.max(b));
            let got: Vec<(u64, u64)> = t.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
            let want: Vec<(u64, u64)> = oracle.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
            assert_eq!(got, want, "{shape} range {lo}..={hi}");
        }
    }
}

#[test]
fn tombstone_resurrection_roundtrip() {
    let keys: Vec<u64> = (0..2_000u64).map(|k| k * 7).collect();
    let mut t = build(&keys, 32, SearchStrategy::Binary);
    let mut oracle: BTreeMap<u64, u64> = keys.iter().map(|&k| (k, k.wrapping_mul(3))).collect();
    // Remove, then re-insert the same keys with new values: the page
    // slots must resurrect in place (no buffer growth, no len drift).
    for &k in keys.iter().step_by(2) {
        assert_eq!(t.remove(&k), oracle.remove(&k));
    }
    for &k in keys.iter().step_by(2) {
        assert_eq!(t.insert(k, k + 1), oracle.insert(k, k + 1));
    }
    assert_eq!(t.len(), oracle.len());
    for &k in &keys {
        assert_eq!(t.get(&k), oracle.get(&k), "key {k}");
    }
    t.check_invariants().unwrap();
}

#[test]
fn hot_path_never_descends_the_btree() {
    // The acceptance-criterion guard: every traced lookup must report
    // flat-directory routing, on hits and misses, before and after
    // structural churn (re-segmentation rebuilds the mirror).
    let keys: Vec<u64> = (0..20_000u64).map(|i| i * i / 7 + i).collect();
    let mut dedup = keys;
    dedup.dedup();
    let mut t = build(&dedup, 64, SearchStrategy::Binary);
    let probe_set: Vec<u64> = dedup.iter().step_by(17).copied().collect();
    for &k in &probe_set {
        let (v, trace) = t.get_traced(&k);
        assert_eq!(v, Some(&k.wrapping_mul(3)));
        assert_eq!(trace.via, DirectoryPath::FlatDirectory, "hit {k}");
        let (miss, trace) = t.get_traced(&(k + 1));
        if miss.is_some() {
            continue; // k + 1 happens to be a real key
        }
        assert_eq!(trace.via, DirectoryPath::FlatDirectory, "miss {}", k + 1);
    }
    // Force buffer overflows and re-segmentations, then re-check.
    for i in 0..5_000u64 {
        t.insert(i * 13 + 5, i);
    }
    for &k in &probe_set {
        let (_, trace) = t.get_traced(&k);
        assert_eq!(trace.via, DirectoryPath::FlatDirectory, "post-churn {k}");
    }
    t.check_invariants().unwrap();
}
