//! Edge cases and hazard injection across the workspace: degenerate
//! inputs, lossy float projections, float keys, and heavy churn soak.

use fiting::plr::{points_from_sorted_keys, validate::validate_segmentation, ShrinkingCone};
use fiting::tree::{FitingTreeBuilder, OrderedF64, SecondaryIndex};
use std::collections::BTreeMap;

#[test]
fn single_key_and_tiny_indexes() {
    let t = FitingTreeBuilder::new(10)
        .bulk_load([(42u64, 1u64)])
        .unwrap();
    assert_eq!(t.get(&42), Some(&1));
    assert_eq!(t.get(&41), None);
    assert_eq!(t.get(&43), None);
    assert_eq!(t.segment_count(), 1);
    t.check_invariants().unwrap();

    let two = FitingTreeBuilder::new(0)
        .bulk_load([(1u64, 1u64), (u64::MAX >> 11, 2)])
        .unwrap();
    assert_eq!(two.get(&(u64::MAX >> 11)), Some(&2));
}

#[test]
fn extreme_key_magnitudes_survive_lossy_projection() {
    // Keys above 2^53 collapse in f64; correctness must not (accuracy
    // may: the effective window just widens).
    let base = 1u64 << 60;
    let pairs: Vec<(u64, u64)> = (0..10_000u64).map(|i| (base + i * 3, i)).collect();
    for error in [4u64, 64, 1024] {
        let mut t = FitingTreeBuilder::new(error)
            .bulk_load(pairs.clone())
            .unwrap();
        for (k, v) in pairs.iter().step_by(97) {
            assert_eq!(t.get(k), Some(v), "error {error} key {k}");
        }
        t.insert(base + 1, 999);
        assert_eq!(t.get(&(base + 1)), Some(&999));
        t.check_invariants().unwrap();
    }
}

#[test]
fn adjacent_keys_denser_than_f64_resolution() {
    // Consecutive u64 keys near 2^60: many project to the same f64.
    let base = 1u64 << 60;
    let pairs: Vec<(u64, u64)> = (0..2_000u64).map(|i| (base + i, i)).collect();
    let t = FitingTreeBuilder::new(16).bulk_load(pairs.clone()).unwrap();
    for (k, v) in pairs.iter().step_by(13) {
        assert_eq!(t.get(k), Some(v));
    }
    t.check_invariants().unwrap();
}

#[test]
fn float_keys_via_ordered_f64() {
    let mut coords: Vec<f64> = (0..5_000)
        .map(|i| -90.0 + (i as f64) * 0.036 + ((i as f64) / 7.0).sin() * 0.001)
        .collect();
    coords.sort_by(f64::total_cmp);
    coords.dedup();
    let pairs: Vec<(OrderedF64, u32)> = coords
        .iter()
        .enumerate()
        .map(|(i, &c)| (OrderedF64::new(c).unwrap(), i as u32))
        .collect();
    let t = FitingTreeBuilder::new(32).bulk_load(pairs.clone()).unwrap();
    for (k, v) in pairs.iter().step_by(101) {
        assert_eq!(t.get(k), Some(v));
    }
    // Negative and positive zero are distinct under total_cmp ordering;
    // the index must treat them as the ordering does.
    let mut z = FitingTreeBuilder::new(4)
        .bulk_load([
            (OrderedF64::new(-0.0).unwrap(), 0u8),
            (OrderedF64::new(0.0).unwrap(), 1u8),
        ])
        .unwrap();
    assert_eq!(z.get(&OrderedF64::new(-0.0).unwrap()), Some(&0));
    assert_eq!(z.get(&OrderedF64::new(0.0).unwrap()), Some(&1));
    z.insert(OrderedF64::new(1.5).unwrap(), 2);
    z.check_invariants().unwrap();
}

#[test]
fn all_identical_keys_secondary() {
    // 10k rows with one attribute value.
    let pairs: Vec<(u64, u64)> = (0..10_000).map(|r| (7u64, r)).collect();
    let idx = SecondaryIndex::bulk_load(100, pairs).unwrap();
    assert_eq!(idx.count(&7), 10_000);
    assert_eq!(idx.count(&8), 0);
    assert!(
        idx.segment_count() > 1,
        "a 10k-deep run cannot be one segment at error 100"
    );
    idx.check_invariants().unwrap();
}

#[test]
fn segmentation_of_pathological_shapes() {
    let shapes: Vec<Vec<f64>> = vec![
        // Giant jump mid-stream.
        (0..1000)
            .map(|i| if i < 500 { i as f64 } else { 1e15 + i as f64 })
            .collect(),
        // Long plateau then steep ramp.
        (0..1000)
            .map(|i| {
                if i < 500 {
                    (i / 100) as f64
                } else {
                    (i * i) as f64
                }
            })
            .collect(),
        // Alternating micro-steps.
        (0..1000).map(|i| (i / 2 * 2) as f64).collect(),
    ];
    for keys in shapes {
        let mut sorted = keys;
        sorted.sort_by(f64::total_cmp);
        let points = points_from_sorted_keys(&sorted);
        for error in [0u64, 3, 47] {
            let segs = ShrinkingCone::segment(&points, error);
            validate_segmentation(&points, &segs, error).unwrap();
        }
    }
}

/// Deterministic soak: 60k interleaved operations against a model, with
/// a buffer size chosen to force frequent re-segmentation.
#[test]
fn churn_soak_against_model() {
    let mut tree = FitingTreeBuilder::new(32)
        .buffer_size(4)
        .bulk_load((0..20_000u64).map(|k| (k * 5, k)))
        .unwrap();
    let mut model: BTreeMap<u64, u64> = (0..20_000u64).map(|k| (k * 5, k)).collect();

    let mut state = 0x243f6a8885a308d3u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..60_000u64 {
        let k = rng() % 120_000;
        match rng() % 10 {
            0..=4 => {
                assert_eq!(tree.insert(k, i), model.insert(k, i));
            }
            5..=7 => {
                assert_eq!(tree.remove(&k), model.remove(&k));
            }
            _ => {
                assert_eq!(tree.get(&k), model.get(&k));
            }
        }
        if i % 10_000 == 0 {
            tree.check_invariants()
                .unwrap_or_else(|e| panic!("op {i}: {e}"));
        }
    }
    assert_eq!(tree.len(), model.len());
    tree.check_invariants().unwrap();
    let got: Vec<u64> = tree.keys().copied().collect();
    let want: Vec<u64> = model.keys().copied().collect();
    assert_eq!(got, want);
}
