//! Linearizability-style stress test for the command-pipeline service.
//!
//! N client threads hammer one `FitingService` with pipelined mixed
//! commands (insert / get / remove / range), each thread owning a
//! disjoint stripe of odd keys and mirroring its own operations
//! against a private model map. Because commands on one key are
//! submitted by one thread and executed in submission order by the
//! key's single shard worker, every completed `Get` must return
//! exactly the model's value at submission time, and every `Insert` /
//! `Remove` must return exactly the model's previous value — not
//! "some plausible value", the *exact* one.
//!
//! `Range` results interleave other threads' stripes, where no order
//! is guaranteed; they are checked structurally: strictly increasing
//! keys inside the requested bounds, and every pair is either preload
//! data or carries the stripe-consistent value encoding some thread
//! actually wrote to that key.
//!
//! After the threads drain their pipelines, `shutdown` must resolve
//! every ticket (a hang fails the test by timeout) and the returned
//! index must equal preload ∪ the merged per-thread models exactly.
//!
//! Scale knob: `FITING_STRESS_OPS` = commands per thread (default
//! 5000; CI runs a smaller count).

use fiting::service::{ServiceConfig, Ticket};
use fiting::tree::{FitingService, FitingTreeBuilder};
use fiting::ShardedIndex;
use std::collections::BTreeMap;

const THREADS: u64 = 4;
const SHARDS: usize = 4;
/// Preloaded even keys: `2k -> k` for `k < PRELOAD`.
const PRELOAD: u64 = 20_000;
/// Stress writes use odd keys below `2 * KEY_SPACE`; values encode
/// `(version << KEY_BITS) | key` so any observed pair can be checked
/// against its key without knowing which thread wrote it.
const KEY_SPACE: u64 = 1 << 14;
const KEY_BITS: u32 = 15;

fn ops_per_thread() -> usize {
    std::env::var("FITING_STRESS_OPS")
        .ok()
        .and_then(|v| v.replace('_', "").parse().ok())
        .unwrap_or(5_000)
}

/// Thread `t`'s `i`-th odd key: stripes are disjoint because the
/// multiplier `m ≡ t (mod THREADS)`.
fn stripe_key(t: u64, i: u64) -> u64 {
    let m = (i * THREADS + t) % KEY_SPACE;
    m * 2 + 1
}

/// Deterministic per-(thread, op) pseudo-randomness.
fn mix(t: u64, i: u64) -> u64 {
    (t.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ i)
        .wrapping_mul(0xbf58_476d_1ce4_e5b9)
        .rotate_left(31)
}

/// What a completed ticket must resolve to.
enum Expect {
    /// `Insert`/`Remove`/`Get`: the exact `Option<value>` the model
    /// predicts at submission time.
    Exact(Ticket<Option<u64>>, Option<u64>, &'static str),
    /// `Range`: structural checks over `[lo, hi)`.
    Window(Ticket<Vec<(u64, u64)>>, u64, u64),
}

fn check(expect: Expect, t: u64, i: usize) {
    match expect {
        Expect::Exact(ticket, want, kind) => {
            let got = ticket.wait().expect("service is running");
            assert_eq!(got, want, "thread {t} op {i} ({kind})");
        }
        Expect::Window(ticket, lo, hi) => {
            let window = ticket.wait().expect("service is running");
            assert!(
                window.windows(2).all(|w| w[0].0 < w[1].0),
                "thread {t} op {i}: range not strictly increasing"
            );
            for &(k, v) in &window {
                assert!(
                    (lo..hi).contains(&k),
                    "thread {t} op {i}: key {k} outside [{lo}, {hi})"
                );
                if k % 2 == 0 {
                    assert_eq!(v, k / 2, "thread {t} op {i}: preload pair corrupted");
                } else {
                    assert_eq!(
                        v & ((1 << KEY_BITS) - 1),
                        k,
                        "thread {t} op {i}: stress value does not encode its key"
                    );
                }
            }
        }
    }
}

#[test]
fn mixed_stress_matches_models_and_drains_on_shutdown() {
    let ops = ops_per_thread();
    let pairs: Vec<(u64, u64)> = (0..PRELOAD).map(|k| (k * 2, k)).collect();
    let index = ShardedIndex::bulk_load(&FitingTreeBuilder::new(64), SHARDS, pairs.clone())
        .expect("preload");
    let service = FitingService::start(
        index,
        ServiceConfig {
            // Small queues so backpressure actually engages mid-test.
            queue_capacity: 128,
            ..ServiceConfig::default()
        },
    );

    let models: Vec<BTreeMap<u64, u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let client = service.client();
                scope.spawn(move || {
                    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
                    let mut version = 0u64;
                    let mut wave: Vec<Expect> = Vec::new();
                    for i in 0..ops as u64 {
                        let key = stripe_key(t, mix(t, i) % (ops as u64));
                        let roll = mix(t, i ^ 0xfeed) % 100;
                        let expect = if roll < 45 {
                            version += 1;
                            let value = (version << KEY_BITS) | key;
                            let want = model.insert(key, value);
                            Expect::Exact(client.insert(key, value), want, "insert")
                        } else if roll < 75 {
                            Expect::Exact(client.get(key), model.get(&key).copied(), "get")
                        } else if roll < 90 {
                            let want = model.remove(&key);
                            Expect::Exact(client.remove(key), want, "remove")
                        } else {
                            let lo = (mix(t, i ^ 0xbeef) % (KEY_SPACE * 2)) & !1;
                            let hi = lo + 512;
                            Expect::Window(client.range(lo..hi), lo, hi)
                        };
                        wave.push(expect);
                        // Drain the pipeline in waves: deep enough to
                        // exercise queue batching, shallow enough to
                        // bound memory.
                        if wave.len() >= 64 {
                            for (j, e) in wave.drain(..).enumerate() {
                                check(e, t, i as usize - 63 + j);
                            }
                        }
                    }
                    for e in wave.drain(..) {
                        check(e, t, ops);
                    }
                    model
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Leave a tail of unawaited commands in flight, then shut down:
    // every ticket must still resolve (no hangs, no lost completions).
    let client = service.client();
    let tail: Vec<_> = (0..500u64)
        .map(|i| client.insert(stripe_key(0, KEY_SPACE + i), (1 << KEY_BITS) | 1))
        .collect();
    let index = service.shutdown();
    let mut tail_landed = 0;
    for t in tail {
        // Accepted commands complete; anything the closing queue
        // refused reports Canceled — but must not hang either way.
        if t.wait().is_ok() {
            tail_landed += 1;
        }
    }
    assert_eq!(tail_landed, 500, "all pre-shutdown submissions drained");

    // Final contents = preload ∪ merged models ∪ tail, exactly.
    let mut expected: BTreeMap<u64, u64> = pairs.into_iter().collect();
    for model in models {
        expected.extend(model);
    }
    for i in 0..500u64 {
        expected.insert(stripe_key(0, KEY_SPACE + i), (1 << KEY_BITS) | 1);
    }
    let got = index.range_collect(..);
    let want: Vec<(u64, u64)> = expected.into_iter().collect();
    assert_eq!(got.len(), want.len(), "final cardinality");
    assert_eq!(got, want, "final contents match the merged models");
}
