//! Round-trip battery for the structure-level segment-run handoff:
//! `FitingTree::split_off` / `FitingTree::absorb` (the primitives
//! behind the O(moved-segments) shard split) must preserve **every**
//! key and every per-segment error envelope under arbitrary cuts.
//!
//! Envelope preservation is asserted through `check_invariants`, which
//! verifies for every live page key that the windowed (error-bounded)
//! lookup finds it — i.e. that handed-off pages kept prediction
//! windows that still contain their keys — and that the flat directory
//! routes every page and buffer key to its owning segment.

use fiting::tree::{AbsorbError, FitingTree, FitingTreeBuilder};
use std::collections::BTreeMap;

/// Deterministic xorshift64* stream.
fn rng(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed.max(1);
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Key shapes that stress the directory and the boundary-segment
/// re-segmentation differently (mirrors the hotpath differential
/// battery).
fn key_shapes() -> Vec<(&'static str, Vec<u64>)> {
    let skewed: Vec<u64> = (0..3_000u64).map(|i| i * i * i).collect();
    let lossy: Vec<u64> = (0..2_000u64)
        .map(|i| (1u64 << 60) + (i / 100) * (1 << 12) + (i % 100))
        .collect();
    let dense: Vec<u64> = (0..4_000).collect();
    let mut r = rng(0xFACE);
    let mut uniform: Vec<u64> = (0..4_000).map(|_| r() >> 1).collect();
    uniform.sort_unstable();
    uniform.dedup();
    vec![
        ("skewed-cubic", skewed),
        ("lossy-f64-span", lossy),
        ("dense", dense),
        ("uniform", uniform),
    ]
}

/// A tree with page data, buffered inserts, and tombstones — all three
/// states the handoff has to move correctly.
fn churned(keys: &[u64], error: u64, seed: u64) -> (FitingTree<u64, u64>, BTreeMap<u64, u64>) {
    let mut t = FitingTreeBuilder::new(error)
        .bulk_load(keys.iter().map(|&k| (k, k ^ 0x5555)))
        .expect("strictly increasing keys");
    let mut model: BTreeMap<u64, u64> = keys.iter().map(|&k| (k, k ^ 0x5555)).collect();
    let mut r = rng(seed);
    for step in 0..1_000u64 {
        let k = keys[(r() as usize) % keys.len()];
        match r() % 3 {
            0 => {
                let k = k.wrapping_add(1 + r() % 3);
                assert_eq!(t.insert(k, step), model.insert(k, step));
            }
            1 => {
                assert_eq!(t.remove(&k), model.remove(&k));
            }
            _ => {
                assert_eq!(t.get(&k), model.get(&k));
            }
        }
    }
    (t, model)
}

#[test]
fn split_off_partitions_exactly_at_random_cuts() {
    for (shape, keys) in key_shapes() {
        for error in [8u64, 64] {
            let (base, model) = churned(&keys, error, 0xA11CE ^ keys.len() as u64);
            let mut r = rng(0xC07 ^ error);
            // Random cuts: existing keys, near-misses, and extremes.
            let mut cuts: Vec<u64> = (0..12)
                .map(|_| keys[(r() as usize) % keys.len()].wrapping_add(r() % 5))
                .collect();
            cuts.push(0);
            cuts.push(u64::MAX);
            for at in cuts {
                let mut left = base.clone();
                let right = left.split_off(&at);
                left.check_invariants()
                    .unwrap_or_else(|e| panic!("{shape}/e={error}/at={at} left: {e}"));
                right
                    .check_invariants()
                    .unwrap_or_else(|e| panic!("{shape}/e={error}/at={at} right: {e}"));
                assert_eq!(left.len() + right.len(), model.len(), "{shape} at={at}");
                // Exact partition: left < at <= right, contents intact.
                let got_left: Vec<(u64, u64)> = left.iter().map(|(k, v)| (*k, *v)).collect();
                let got_right: Vec<(u64, u64)> = right.iter().map(|(k, v)| (*k, *v)).collect();
                let want_left: Vec<(u64, u64)> = model.range(..at).map(|(&k, &v)| (k, v)).collect();
                let want_right: Vec<(u64, u64)> =
                    model.range(at..).map(|(&k, &v)| (k, v)).collect();
                assert_eq!(got_left, want_left, "{shape}/e={error} left of {at}");
                assert_eq!(got_right, want_right, "{shape}/e={error} right of {at}");
                // Every moved key still resolves through the windowed
                // point path on its new owner.
                for (k, v) in want_right.iter().take(200) {
                    assert_eq!(right.get(k), Some(v), "{shape} moved key {k}");
                }
            }
        }
    }
}

#[test]
fn split_absorb_round_trip_restores_every_key() {
    for (shape, keys) in key_shapes() {
        for error in [8u64, 64] {
            let (base, model) = churned(&keys, error, 0xB0B ^ keys.len() as u64);
            let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
            let mut r = rng(0xD1CE ^ error);
            for _ in 0..8 {
                let at = keys[(r() as usize) % keys.len()].wrapping_add(r() % 3);
                let mut left = base.clone();
                let mut right = left.split_off(&at);
                left.absorb(&mut right)
                    .unwrap_or_else(|e| panic!("{shape}/e={error}/at={at} absorb: {e}"));
                assert!(right.is_empty());
                let got: Vec<(u64, u64)> = left.iter().map(|(k, v)| (*k, *v)).collect();
                assert_eq!(got, want, "{shape}/e={error} round trip at {at}");
                left.check_invariants()
                    .unwrap_or_else(|e| panic!("{shape}/e={error}/at={at}: {e}"));
            }
        }
    }
}

#[test]
fn repeated_splits_then_absorb_all_back() {
    let keys: Vec<u64> = (0..6_000u64).map(|i| i * 13 + (i % 7)).collect();
    let (base, model) = churned(&keys, 32, 0x5EED);
    let mut r = rng(0xFEED);

    // Shatter into ~9 pieces at random cuts.
    let mut pieces = vec![base];
    for _ in 0..8 {
        let idx = (r() as usize) % pieces.len();
        let at = keys[(r() as usize) % keys.len()];
        let right = pieces[idx].split_off(&at);
        pieces.push(right);
    }
    let total: usize = pieces.iter().map(FitingTree::len).sum();
    assert_eq!(total, model.len(), "shatter conserves entries");
    for p in &pieces {
        p.check_invariants().unwrap();
    }

    // Reassemble in key order: sort pieces by first key and absorb.
    pieces.retain(|p| !p.is_empty());
    pieces.sort_by_key(|p| p.first().map(|(k, _)| *k));
    let mut whole = pieces.remove(0);
    for mut piece in pieces {
        whole.absorb(&mut piece).expect("pieces are disjoint runs");
    }
    let got: Vec<(u64, u64)> = whole.iter().map(|(k, v)| (*k, *v)).collect();
    let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
    assert_eq!(got, want, "reassembled tree matches the model");
    whole.check_invariants().unwrap();
}

#[test]
fn handoff_moves_pages_not_entries() {
    // The O(moved-segments) claim, observable from the outside: a split
    // plus the boundary re-segmentation may only add a constant number
    // of segments, and an absorb of disjoint runs adds segment counts
    // exactly.
    let mut r = rng(0xBEEF);
    let mut key = 0u64;
    let dedup: Vec<u64> = (0..50_000u64)
        .map(|_| {
            // Heavy-tailed gaps: no linear model covers many keys, so a
            // tight budget yields thousands of segments.
            key += 1 + (r() % 1_000) * (r() % 50);
            key
        })
        .collect();
    let mut t = FitingTreeBuilder::new(16)
        .bulk_load(dedup.iter().map(|&k| (k, k)))
        .unwrap();
    let before = t.segment_count();
    assert!(before > 100, "need a segment-rich tree ({before})");
    let right = t.split_off(&dedup[dedup.len() / 3]);
    assert!(
        t.segment_count() + right.segment_count() <= before + 4,
        "split re-segmented more than the boundary: {} + {} vs {before}",
        t.segment_count(),
        right.segment_count()
    );
    let (left_segs, right_segs) = (t.segment_count(), right.segment_count());
    let mut right = right;
    t.absorb(&mut right).unwrap();
    assert!(
        t.segment_count() <= left_segs + right_segs,
        "absorb must not re-segment moved pages"
    );
    t.check_invariants().unwrap();
}

#[test]
fn absorb_error_paths_leave_trees_untouched() {
    let mut a = FitingTreeBuilder::new(32)
        .bulk_load((0..1_000u64).map(|k| (k * 2, k)))
        .unwrap();
    // Overlap.
    let mut b = FitingTreeBuilder::new(32)
        .bulk_load((500..1_500u64).map(|k| (k * 2, k)))
        .unwrap();
    assert_eq!(a.absorb(&mut b), Err(AbsorbError::KeyOverlap));
    assert_eq!(a.len(), 1_000);
    assert_eq!(b.len(), 1_000);
    // Config mismatch.
    let mut c = FitingTreeBuilder::new(8)
        .bulk_load((10_000..10_500u64).map(|k| (k, k)))
        .unwrap();
    assert_eq!(a.absorb(&mut c), Err(AbsorbError::ConfigMismatch));
    assert_eq!(c.len(), 500);
    a.check_invariants().unwrap();
    b.check_invariants().unwrap();
    c.check_invariants().unwrap();
}
