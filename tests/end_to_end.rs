//! Cross-crate integration: datasets → segmentation → index → baselines
//! → cost model, exercised together the way the benchmark harness and a
//! downstream user would.

use fiting::baselines::{BinarySearchIndex, FixedPageIndex, FullIndex};
use fiting::datasets::Dataset;
use fiting::plr::{validate::validate_segmentation, Point, ShrinkingCone};
use fiting::tree::cost::{CostModel, SegmentCountModel};
use fiting::tree::{FitingTreeBuilder, SecondaryIndex};
use fiting::DynSortedIndex;

fn dataset_pairs(ds: Dataset, n: usize) -> Vec<(u64, u64)> {
    let mut keys = ds.generate(n, 77);
    keys.dedup();
    keys.iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u64))
        .collect()
}

#[test]
fn segmentation_contract_holds_on_every_dataset() {
    for ds in [
        Dataset::Weblogs,
        Dataset::Iot,
        Dataset::Maps,
        Dataset::TaxiPickupTime,
        Dataset::TaxiDropLat,
        Dataset::TaxiDropLon,
        Dataset::Step(100),
        Dataset::Uniform,
    ] {
        let keys = ds.generate(30_000, 5);
        let points: Vec<Point> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| Point::new(k as f64, i as u64))
            .collect();
        for error in [0u64, 10, 100, 1000] {
            let segs = ShrinkingCone::segment(&points, error);
            validate_segmentation(&points, &segs, error)
                .unwrap_or_else(|e| panic!("{} e={error}: {e}", ds.name()));
        }
    }
}

#[test]
fn all_index_structures_answer_identically() {
    let pairs = dataset_pairs(Dataset::Weblogs, 60_000);
    let keys: Vec<u64> = pairs.iter().map(|&(k, _)| k).collect();

    let mut fiting = FitingTreeBuilder::new(64)
        .bulk_load(pairs.iter().copied())
        .unwrap();
    let mut full = FullIndex::bulk_load(pairs.iter().copied());
    let mut fixed = FixedPageIndex::bulk_load(64, pairs.iter().copied());
    let mut binary = BinarySearchIndex::bulk_load(pairs.iter().copied());

    let indexes: [&mut dyn DynSortedIndex<u64, u64>; 4] =
        [&mut fiting, &mut full, &mut fixed, &mut binary];
    let mut results: Vec<Vec<Option<u64>>> = Vec::new();
    for idx in indexes {
        let mut per = Vec::new();
        for &k in keys.iter().step_by(101) {
            per.push(idx.dyn_get(&k));
            per.push(idx.dyn_get(&(k + 1)));
        }
        // Mixed churn.
        for &k in keys.iter().step_by(977) {
            idx.dyn_insert(k + 1, k);
        }
        for &k in keys.iter().step_by(101) {
            per.push(idx.dyn_get(&(k + 1)));
        }
        for &k in keys.iter().step_by(1201) {
            idx.dyn_remove(&(k + 1));
        }
        use std::ops::Bound;
        per.push(Some(
            idx.dyn_range_count(Bound::Included(&keys[100]), Bound::Included(&keys[5_000])) as u64,
        ));
        results.push(per);
    }
    for pair in results.windows(2) {
        assert_eq!(pair[0], pair[1]);
    }
}

#[test]
fn cost_model_configurations_are_feasible_end_to_end() {
    let pairs = dataset_pairs(Dataset::Iot, 100_000);
    let keys: Vec<u64> = pairs.iter().map(|&(k, _)| k).collect();
    let candidates = vec![16u64, 64, 256, 1024, 4096];
    let model = SegmentCountModel::learn(&keys, &candidates);
    let cost = CostModel::default();

    // Every candidate the selector returns must build an index whose
    // *actual* size respects the budget the selector was given (the size
    // model is pessimistic, so estimated ≥ actual).
    for budget in [8.0 * 1024.0, 64.0 * 1024.0, 1024.0 * 1024.0] {
        if let Some(e) = cost.pick_error_for_size(&model, budget) {
            let tree = FitingTreeBuilder::new(e)
                .bulk_load(pairs.iter().copied())
                .unwrap();
            assert!(
                (tree.index_size_bytes() as f64) <= budget,
                "budget {budget}: picked e={e}, actual {} bytes",
                tree.index_size_bytes()
            );
        }
    }
}

#[test]
fn secondary_and_clustered_agree_on_unique_keys() {
    // On duplicate-free data a secondary index answers exactly like a
    // clustered one.
    let pairs = dataset_pairs(Dataset::Uniform, 40_000);
    let clustered = FitingTreeBuilder::new(32)
        .bulk_load(pairs.iter().copied())
        .unwrap();
    let secondary = SecondaryIndex::bulk_load(32, pairs.iter().copied()).unwrap();
    for &(k, v) in pairs.iter().step_by(53) {
        assert_eq!(clustered.get(&k), Some(&v));
        let rows: Vec<u64> = secondary.get(&k).collect();
        assert_eq!(rows, vec![v]);
    }
    assert_eq!(
        clustered.range(pairs[10].0..pairs[200].0).count(),
        secondary.range(pairs[10].0..pairs[200].0).count()
    );
}

#[test]
fn paper_headline_size_claim_holds() {
    // "Comparable performance, orders of magnitude less space": at a
    // moderate error the FITing-Tree index must be at least 50x smaller
    // than the dense index on every headline dataset.
    for ds in Dataset::headline() {
        let pairs = dataset_pairs(ds, 200_000);
        let fiting = FitingTreeBuilder::new(256)
            .bulk_load(pairs.iter().copied())
            .unwrap();
        let full = FullIndex::bulk_load(pairs.iter().copied());
        let ratio = full.dyn_size_bytes() as f64 / fiting.index_size_bytes().max(1) as f64;
        assert!(
            ratio > 50.0,
            "{}: dense/FITing size ratio only {ratio:.1}",
            ds.name()
        );
    }
}

#[test]
fn step_dataset_reproduces_figure9_cliff() {
    let keys = fiting::datasets::step(50_000, 100);
    let dup_pairs: Vec<(u64, u64)> = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i as u64))
        .collect();
    let below = SecondaryIndex::bulk_load_with(
        FitingTreeBuilder::new(50).buffer_size(0),
        dup_pairs.iter().copied(),
    )
    .unwrap();
    let above = SecondaryIndex::bulk_load_with(
        FitingTreeBuilder::new(150).buffer_size(0),
        dup_pairs.iter().copied(),
    )
    .unwrap();
    assert!(
        below.segment_count() >= 500,
        "below: {}",
        below.segment_count()
    );
    assert_eq!(above.segment_count(), 1, "above the step size: one segment");
}
