//! Oracle-differential battery for the wait-free read path: reader
//! threads drive `get` and `range_collect` against a `BTreeMap` oracle
//! while a writer continuously splits and merges shards and churns a
//! disjoint flux key range through `insert_many`/`remove`.
//!
//! Key-space discipline makes every concurrent observation exactly
//! checkable:
//!
//! * **Stable region** (keys `< FLUX_BASE`): bulk-loaded once, never
//!   mutated. Every `get` must return the oracle's value and every
//!   windowed `range_collect` must equal the oracle's window verbatim,
//!   no matter how many routing tables and shard splices the read
//!   crosses.
//! * **Flux region** (keys `≥ FLUX_BASE`): inserted and removed by the
//!   writer mid-flight. A read may see a flux key present or absent —
//!   but a present key must carry its one legal value, and range scans
//!   must stay strictly sorted with no duplicates.
//!
//! The battery ends with the trace-level wait-free assertion: after a
//! warm-up read on a writer-quiescent index, a long read-only window
//! must leave the routing `refreshes` (slow-path `Arc` clones), seqlock
//! `contended_reads` (lock-path fallbacks), and `publishes` counters
//! all unchanged — steady-state reads acquire zero locks and clone
//! zero `Arc`s. `FITING_STRESS_OPS` scales the churn for the nightly
//! soak.

use fiting::index_api::ShardedIndex;
use fiting::tree::{FitingTree, FitingTreeBuilder};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

type Idx = ShardedIndex<u64, u64, FitingTree<u64, u64>>;

const SHARDS: usize = 4;
/// Stable keys are `0, 10, …, (STABLE-1)*10`.
const STABLE: u64 = 8_000;
/// First flux key — strictly above every stable key.
const FLUX_BASE: u64 = STABLE * 10 + 10;
/// Flux keys churned per writer cycle.
const FLUX_KEYS: u64 = 500;

fn stable_value(k: u64) -> u64 {
    k * 7 + 1
}

fn flux_value(k: u64) -> u64 {
    k * 13 + 5
}

/// Writer churn cycles: scaled by `FITING_STRESS_OPS` (the same knob
/// the other stress batteries honor), floored at 60 so the default run
/// still crosses many routing republishes.
fn churn_cycles() -> u64 {
    std::env::var("FITING_STRESS_OPS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(60, |ops| (ops / 500).max(60))
}

fn oracle() -> BTreeMap<u64, u64> {
    (0..STABLE)
        .map(|k| (k * 10, stable_value(k * 10)))
        .collect()
}

fn build_index() -> Idx {
    let config = FitingTreeBuilder::new(64);
    ShardedIndex::bulk_load(&config, SHARDS, oracle().into_iter().collect()).unwrap()
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// One full differential pass: point gets over both regions plus
/// windowed and full-range scans, each checked against the oracle.
fn differential_pass(index: &Idx, oracle: &BTreeMap<u64, u64>, rng: &mut u64) -> u64 {
    let mut checks = 0u64;
    // Point gets: stable keys are exact; absent keys stay absent.
    for _ in 0..64 {
        let k = (xorshift(rng) % STABLE) * 10;
        assert_eq!(index.get(&k), oracle.get(&k).copied(), "stable key {k}");
        assert_eq!(index.get(&(k + 5)), None, "phantom key {}", k + 5);
        checks += 2;
    }
    // Flux gets: present-with-legal-value or absent.
    for _ in 0..16 {
        let k = FLUX_BASE + (xorshift(rng) % FLUX_KEYS) * 10;
        let got = index.get(&k);
        assert!(
            got.is_none() || got == Some(flux_value(k)),
            "flux key {k} carried foreign value {got:?}"
        );
        checks += 1;
    }
    // Windowed scans inside the stable region: verbatim oracle equality.
    for _ in 0..4 {
        let lo = (xorshift(rng) % STABLE) * 10;
        let hi = (lo + 1 + xorshift(rng) % 4_000).min(STABLE * 10);
        let got = index.range_collect(lo..hi);
        let want: Vec<(u64, u64)> = oracle.range(lo..hi).map(|(&k, &v)| (k, v)).collect();
        assert_eq!(got, want, "window {lo}..{hi} diverged from oracle");
        checks += 1;
    }
    // Full scan: the stable prefix is verbatim; flux tail keys are
    // legal; the whole run is strictly sorted (no duplicates, no
    // cross-shard ordering slips during a splice).
    let all = index.range_collect(..);
    assert!(
        all.windows(2).all(|w| w[0].0 < w[1].0),
        "full scan not strictly sorted"
    );
    let stable_prefix: Vec<(u64, u64)> = all
        .iter()
        .copied()
        .take_while(|&(k, _)| k < FLUX_BASE)
        .collect();
    let want: Vec<(u64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
    assert_eq!(stable_prefix, want, "stable prefix diverged from oracle");
    for &(k, v) in all.iter().skip_while(|&&(k, _)| k < FLUX_BASE) {
        assert_eq!(v, flux_value(k), "flux key {k} carried foreign value");
    }
    checks + 1
}

/// Steady-state trace assertion: over a warmed, writer-quiescent
/// window, reads must not touch the slow paths — no routing refreshes
/// (each is a mutex hold + `Arc` clone), no contended seqlock reads
/// (each is a lock acquisition), no publishes.
fn assert_steady_state_reads_are_wait_free(index: &Idx, oracle: &BTreeMap<u64, u64>) {
    // Warm this thread's routing cache (one refresh allowed here).
    let mut rng = 0x00D1FF_u64;
    differential_pass(index, oracle, &mut rng);
    let before = index.routing_stats();
    for _ in 0..16 {
        differential_pass(index, oracle, &mut rng);
    }
    let after = index.routing_stats();
    assert_eq!(
        after.refreshes, before.refreshes,
        "steady-state reads refreshed the routing cache (Arc clone on the hot path)"
    );
    assert_eq!(
        after.contended_reads, before.contended_reads,
        "steady-state reads fell back to the seqlock's lock path"
    );
    assert_eq!(after.publishes, before.publishes, "reads published");
    assert_eq!(after.version, before.version, "reads bumped the version");
}

#[test]
fn concurrent_reads_match_oracle_under_split_merge_churn() {
    let index = build_index();
    let oracle = Arc::new(oracle());
    let config = FitingTreeBuilder::new(64);

    let stop = Arc::new(AtomicBool::new(false));
    let started = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..3u64)
        .map(|t| {
            let index = index.clone();
            let oracle = Arc::clone(&oracle);
            let stop = Arc::clone(&stop);
            let started = Arc::clone(&started);
            thread::spawn(move || {
                let mut rng = 0x9E37_79B9_7F4A_7C15 ^ (t + 1);
                let mut checks = 0u64;
                loop {
                    checks += differential_pass(&index, &oracle, &mut rng);
                    if checks > 0 && started.load(Ordering::Relaxed) <= t {
                        // First full pass done: let the writer start.
                        started.fetch_add(1, Ordering::Release);
                    }
                    if stop.load(Ordering::Acquire) {
                        return checks;
                    }
                }
            })
        })
        .collect();

    // On a single-core box the writer can otherwise finish its churn
    // before any reader is scheduled; insist on overlap.
    while started.load(Ordering::Acquire) < 3 {
        thread::yield_now();
    }

    let mut rng = 0xC0FFEE_u64;
    let mut splits = 0u64;
    let mut merges = 0u64;
    for cycle in 0..churn_cycles() {
        // Flux churn: batch in, then drain one by one.
        let batch: Vec<(u64, u64)> = (0..FLUX_KEYS)
            .map(|i| {
                let k = FLUX_BASE + i * 10;
                (k, flux_value(k))
            })
            .collect();
        index.insert_many(batch);
        for i in 0..FLUX_KEYS {
            let k = FLUX_BASE + i * 10;
            assert_eq!(index.remove(&k), Some(flux_value(k)));
        }
        // Structural churn: split around a random stable key while the
        // shard count is low, merge a random adjacent pair while it is
        // high. Refusals (boundary out of span, tiny shards) are fine —
        // the point is continuous routing republishes.
        if index.shard_count() < 10 {
            let k = (xorshift(&mut rng) % STABLE) * 10;
            let shard = index.shard_of(&k);
            if index.split_shard(&config, shard, k).is_ok() {
                splits += 1;
            }
        }
        if index.shard_count() > 4 {
            let at = (xorshift(&mut rng) as usize) % (index.shard_count() - 1);
            if index.merge_with_next(at).is_ok() {
                merges += 1;
            }
        }
        if cycle % 16 == 0 {
            index.collect_routing();
        }
    }
    stop.store(true, Ordering::Release);
    for r in readers {
        assert!(r.join().unwrap() > 0, "reader made progress");
    }

    assert!(splits > 0, "churn never split a shard");
    assert!(merges > 0, "churn never merged a pair");
    assert_eq!(index.len(), STABLE as usize, "flux keys fully drained");

    // Writer quiescent: once every participant has moved to the final
    // version (the joined readers' slots are pruned; this thread
    // advances with one read), reclamation catches up completely.
    let _ = index.get(&0);
    index.collect_routing();
    assert_eq!(index.routing_stats().retired_backlog, 0);
    assert_steady_state_reads_are_wait_free(&index, &oracle);
}

#[test]
fn steady_state_reads_are_wait_free_from_cold_start() {
    let index = build_index();
    let config = FitingTreeBuilder::new(64);
    // A couple of structural mutations so the routing version is past
    // its initial value — the steady state must hold on any version.
    // 30_000 sits mid-quartile, strictly inside its shard's span.
    let shard = index.shard_of(&30_000);
    index
        .split_shard(&config, shard, 30_000)
        .expect("mid-key split");
    index.merge_with_next(0).expect("adjacent merge");
    index.collect_routing();
    assert_steady_state_reads_are_wait_free(&index, &oracle());
}
