//! Conformance suite for the command-pipeline service layer: one
//! shared battery — typed round trips, raw command submission,
//! cross-shard `insert_many` fan-out, backpressure, stats, shutdown
//! draining — run against a service over **every** `BuildableIndex`
//! implementation in the workspace. The pipeline is generic over
//! `SortedIndex` via `ShardedIndex` routing; this suite is that claim
//! as an executable contract.

use fiting::baselines::{BinarySearchIndex, FixedPageIndex, FullIndex};
use fiting::btree::BPlusTree;
use fiting::service::{Command, IndexService, ServiceConfig, TryPushError};
use fiting::tree::{DeltaConfig, DeltaFitingTree, FitingTree, FitingTreeBuilder};
use fiting::{BuildableIndex, ShardedIndex};

/// Runs the service battery over one shard structure.
fn service_battery<I>(name: &str, config: &I::Config)
where
    I: BuildableIndex<u64, u64> + Send + Sync + 'static,
{
    let pairs: Vec<(u64, u64)> = (0..5_000u64).map(|k| (k * 2, k)).collect();
    let index: ShardedIndex<u64, u64, I> =
        ShardedIndex::bulk_load(config, 4, pairs).expect("bulk load");
    let service = IndexService::start(index, ServiceConfig::default());
    let client = service.client();
    assert_eq!(client.lane_count(), 4, "{name}");

    // Typed round trips.
    assert_eq!(client.get(100).wait(), Ok(Some(50)), "{name}: get hit");
    assert_eq!(client.get(101).wait(), Ok(None), "{name}: get miss");
    assert_eq!(client.insert(101, 7).wait(), Ok(None), "{name}: insert");
    assert_eq!(
        client.insert(101, 8).wait(),
        Ok(Some(7)),
        "{name}: overwrite returns shadowed value"
    );
    assert_eq!(client.remove(101).wait(), Ok(Some(8)), "{name}: remove");
    assert_eq!(client.remove(101).wait(), Ok(None), "{name}: double remove");

    // Range scans, including cross-shard and inverted-to-empty.
    let window = client.range(100..=110).wait().unwrap();
    assert_eq!(
        window,
        vec![
            (100, 50),
            (102, 51),
            (104, 52),
            (106, 53),
            (108, 54),
            (110, 55)
        ],
        "{name}: bounded scan"
    );
    let all = client.range(..).wait().unwrap();
    assert_eq!(all.len(), 5_000, "{name}: full scan");
    assert!(
        all.windows(2).all(|w| w[0].0 < w[1].0),
        "{name}: scan ordered"
    );

    // Cross-shard batched insert through the splitting convenience.
    let fresh = client.insert_many((0..500u64).map(|k| (k * 20 + 1, k)).collect());
    assert_eq!(fresh.wait(), Ok(500), "{name}: insert_many fresh");
    let again = client.insert_many(vec![(1, 9), (10_001, 9)]);
    assert_eq!(again.wait(), Ok(1), "{name}: overwrites not fresh");

    // Raw command submission (the lower-level half of the API).
    let (cmd, t) = Command::get(1);
    client.submit(cmd).expect("service open");
    assert_eq!(t.wait(), Ok(Some(9)), "{name}: raw submit");
    let (cmd, t) = Command::insert_many(vec![(3, 3), (5, 5)]);
    client.submit(cmd).expect("service open");
    assert_eq!(t.wait(), Ok(2), "{name}: raw insert_many");

    // try_submit either lands or reports backpressure; never panics.
    let (cmd, t) = Command::insert(7, 7);
    match client.try_submit(cmd) {
        Ok(()) => assert_eq!(t.wait(), Ok(None), "{name}: try_submit"),
        Err(TryPushError::Busy(cmd)) => {
            client.submit(cmd).expect("service open");
            assert_eq!(t.wait(), Ok(None), "{name}: resubmitted");
        }
        Err(TryPushError::Closed(_)) => panic!("{name}: service is open"),
    }

    // Stats reconcile with the work done.
    let stats = service.stats();
    assert_eq!(stats.lanes.len(), 4, "{name}");
    assert_eq!(stats.shards.len(), 4, "{name}: no rebalancer attached");
    assert!(stats.total_processed() >= 14, "{name}: processed counted");
    assert!(stats.imbalance() >= 1.0, "{name}");

    // Shutdown drains, then refuses.
    let index = service.shutdown();
    // 5 000 preload + 500 batch + 10 001 + keys 3, 5, and 7.
    assert_eq!(index.len(), 5_504, "{name}: final contents");
    assert_eq!(index.get(&3), Some(3), "{name}");
    assert!(client.is_closed(), "{name}");
    assert!(
        client.get(0).wait().is_err(),
        "{name}: canceled after close"
    );
}

#[test]
fn service_over_fiting_tree() {
    service_battery::<FitingTree<u64, u64>>("FITing-Tree", &FitingTreeBuilder::new(32));
}

#[test]
fn service_over_delta_fiting_tree() {
    // Budget 64: merges fire during the battery's write traffic.
    service_battery::<DeltaFitingTree<u64, u64>>("Delta", &DeltaConfig::new(64, 64));
}

#[test]
fn service_over_bplus_tree() {
    service_battery::<BPlusTree<u64, u64>>("B+ tree", &());
}

#[test]
fn service_over_full_index() {
    service_battery::<FullIndex<u64, u64>>("Full", &());
}

#[test]
fn service_over_fixed_page_index() {
    service_battery::<FixedPageIndex<u64, u64>>("Fixed", &64);
}

#[test]
fn service_over_binary_search() {
    service_battery::<BinarySearchIndex<u64, u64>>("Binary", &());
}
