//! Conformance suite for the unified `SortedIndex` API: one shared
//! battery — bulk load, point hit/miss, overwrite, remove,
//! boundary-crossing range scans, empty index — run against **every**
//! implementation in the workspace, all constructed through
//! `BuildableIndex`. This is the paper's Section 7.1 fairness rule as
//! an executable contract: if a structure passes here, the benchmark
//! harness can drive it interchangeably.
//!
//! Plus a multi-threaded smoke test for the sharded concurrent
//! front-end (`ShardedIndex`).

use fiting::baselines::{BinarySearchIndex, FixedPageIndex, FullIndex};
use fiting::btree::BPlusTree;
use fiting::tree::{DeltaConfig, DeltaFitingTree, FitingTree, FitingTreeBuilder};
use fiting::{BuildableIndex, DynSortedIndex, ShardedIndex, SortedIndex};
use std::collections::BTreeMap;
use std::ops::Bound;

/// Runs the full battery against one implementation.
fn battery<I: SortedIndex<u64, u64>>(name: &str, build: impl Fn(Vec<(u64, u64)>) -> I) {
    empty_index(name, &build);
    bulk_load_hit_miss(name, &build);
    overwrite_and_remove(name, &build);
    boundary_crossing_ranges(name, &build);
    churn_agrees_with_model(name, &build);
    batched_inserts_match_model(name, &build);
}

fn batched_inserts_match_model<I: SortedIndex<u64, u64>>(
    name: &str,
    build: &impl Fn(Vec<(u64, u64)>) -> I,
) {
    let pairs: Vec<(u64, u64)> = (0..1_000u64).map(|k| (k * 2, k)).collect();
    let mut idx = build(pairs.clone());
    let mut model: BTreeMap<u64, u64> = pairs.into_iter().collect();

    // Unsorted batch mixing fresh keys and overwrites; a duplicate key
    // (9) must resolve last-write-wins.
    let batch = vec![(9, 1), (4, 90), (1_999, 2), (9, 3), (0, 91), (777, 4)];
    let mut fresh_model = 0;
    for &(k, v) in &batch {
        if model.insert(k, v).is_none() {
            fresh_model += 1;
        }
    }
    let fresh = idx.insert_many(batch);
    assert_eq!(fresh, fresh_model, "{name}: insert_many fresh count");
    assert_eq!(
        idx.get(&9),
        Some(&3),
        "{name}: duplicate key last-write-wins"
    );
    assert_eq!(idx.get(&4), Some(&90), "{name}: overwrite applied");
    assert_eq!(idx.len(), model.len(), "{name}: len after insert_many");

    // Same contract through the trait object.
    let dyn_idx: &mut dyn DynSortedIndex<u64, u64> = &mut idx;
    let batch = vec![(5, 50), (9, 9), (3, 30)];
    let mut fresh_model = 0;
    for &(k, v) in &batch {
        if model.insert(k, v).is_none() {
            fresh_model += 1;
        }
    }
    assert_eq!(
        dyn_idx.insert_many_dyn(batch),
        fresh_model,
        "{name}: insert_many_dyn fresh count"
    );
    assert_eq!(dyn_idx.dyn_len(), model.len(), "{name}");
    let want: Vec<(u64, u64)> = model.into_iter().collect();
    assert_eq!(
        idx.range_collect(..),
        want,
        "{name}: contents after batches"
    );
}

fn empty_index<I: SortedIndex<u64, u64>>(name: &str, build: &impl Fn(Vec<(u64, u64)>) -> I) {
    let mut idx = build(Vec::new());
    assert_eq!(idx.len(), 0, "{name}: empty len");
    assert!(idx.is_empty(), "{name}: empty is_empty");
    assert_eq!(idx.get(&5), None, "{name}: empty get");
    assert_eq!(idx.remove(&5), None, "{name}: empty remove");
    assert_eq!(idx.range_collect(..), Vec::new(), "{name}: empty scan");
    // An empty index still accepts writes.
    assert_eq!(idx.insert(7, 70), None, "{name}: insert into empty");
    assert_eq!(idx.get(&7), Some(&70), "{name}: read back");
    assert_eq!(idx.len(), 1, "{name}: len after insert");
    assert_eq!(idx.remove(&7), Some(70), "{name}: remove last");
    assert!(idx.is_empty(), "{name}: empty again");
}

fn bulk_load_hit_miss<I: SortedIndex<u64, u64>>(name: &str, build: &impl Fn(Vec<(u64, u64)>) -> I) {
    let pairs: Vec<(u64, u64)> = (0..2_000u64).map(|k| (k * 3, k)).collect();
    let idx = build(pairs);
    assert_eq!(idx.len(), 2_000, "{name}: bulk len");
    for k in (0..2_000u64).step_by(19) {
        assert_eq!(idx.get(&(k * 3)), Some(&k), "{name}: hit {k}");
        assert_eq!(idx.get(&(k * 3 + 1)), None, "{name}: miss {k}");
        assert_eq!(idx.get(&(k * 3 + 2)), None, "{name}: miss {k}");
    }
    // Misses beyond both ends.
    assert_eq!(idx.get(&u64::MAX), None, "{name}: miss above");
    assert!(!idx.is_empty(), "{name}");
}

fn overwrite_and_remove<I: SortedIndex<u64, u64>>(
    name: &str,
    build: &impl Fn(Vec<(u64, u64)>) -> I,
) {
    let pairs: Vec<(u64, u64)> = (0..500u64).map(|k| (k * 2, k)).collect();
    let mut idx = build(pairs);
    // Overwrite returns the shadowed value and keeps len.
    assert_eq!(idx.insert(100, 999), Some(50), "{name}: overwrite");
    assert_eq!(idx.get(&100), Some(&999), "{name}: new value visible");
    assert_eq!(idx.len(), 500, "{name}: overwrite keeps len");
    // Remove present / absent.
    assert_eq!(idx.remove(&100), Some(999), "{name}: remove hit");
    assert_eq!(idx.get(&100), None, "{name}: removed gone");
    assert_eq!(idx.remove(&100), None, "{name}: double remove");
    assert_eq!(idx.len(), 499, "{name}: len after remove");
    // Reinsert after remove.
    assert_eq!(idx.insert(100, 1), None, "{name}: reinsert");
    assert_eq!(idx.len(), 500, "{name}");
}

fn boundary_crossing_ranges<I: SortedIndex<u64, u64>>(
    name: &str,
    build: &impl Fn(Vec<(u64, u64)>) -> I,
) {
    // Keys spaced so segment/page/shard boundaries land mid-range for
    // every structure configuration used below.
    let pairs: Vec<(u64, u64)> = (0..3_000u64).map(|k| (k * 5, k)).collect();
    let model: BTreeMap<u64, u64> = pairs.iter().copied().collect();
    let idx = build(pairs);

    let cases: Vec<(Bound<u64>, Bound<u64>)> = vec![
        (Bound::Unbounded, Bound::Unbounded),
        (Bound::Included(0), Bound::Included(14_995)),
        (Bound::Included(4_999), Bound::Included(5_001)), // straddles key 5000
        (Bound::Included(5_000), Bound::Excluded(5_000)), // empty
        (Bound::Excluded(5_000), Bound::Included(5_010)),
        (Bound::Included(1_234), Bound::Included(9_876)), // non-key endpoints
        (Bound::Unbounded, Bound::Excluded(50)),
        (Bound::Included(14_000), Bound::Unbounded),
        (Bound::Included(14_995), Bound::Included(u64::MAX)), // last key
    ];
    for (lo, hi) in cases {
        let got = idx.range_collect((lo, hi));
        let want: Vec<(u64, u64)> = model.range((lo, hi)).map(|(&k, &v)| (k, v)).collect();
        assert_eq!(got, want, "{name}: range {lo:?}..{hi:?}");
        assert_eq!(
            idx.range_count((lo, hi)),
            want.len(),
            "{name}: count {lo:?}..{hi:?}"
        );
    }
    // Results come back in strictly increasing key order.
    let all = idx.range_collect(..);
    assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "{name}: ordered");
}

fn churn_agrees_with_model<I: SortedIndex<u64, u64>>(
    name: &str,
    build: &impl Fn(Vec<(u64, u64)>) -> I,
) {
    let pairs: Vec<(u64, u64)> = (0..400u64).map(|k| (k * 4, k)).collect();
    let mut idx = build(pairs.clone());
    let mut model: BTreeMap<u64, u64> = pairs.into_iter().collect();
    // Deterministic xorshift churn: inserts, overwrites, removes.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..3_000u64 {
        let k = rng() % 2_000;
        match rng() % 4 {
            0 | 1 => assert_eq!(idx.insert(k, i), model.insert(k, i), "{name}: insert {k}"),
            2 => assert_eq!(idx.remove(&k), model.remove(&k), "{name}: remove {k}"),
            _ => assert_eq!(idx.get(&k), model.get(&k), "{name}: get {k}"),
        }
        assert_eq!(idx.len(), model.len(), "{name}: len parity");
    }
    let got = idx.range_collect(..);
    let want: Vec<(u64, u64)> = model.into_iter().collect();
    assert_eq!(got, want, "{name}: final scan");
}

#[test]
fn fiting_tree_conforms() {
    battery("FITing-Tree", |pairs| {
        FitingTree::build_sorted(&FitingTreeBuilder::new(32), pairs).unwrap()
    });
    // Tiny error: many segments, boundaries everywhere.
    battery("FITing-Tree(e=4)", |pairs| {
        FitingTree::build_sorted(&FitingTreeBuilder::new(4), pairs).unwrap()
    });
}

#[test]
fn delta_fiting_tree_conforms() {
    // Budget 64: merges fire constantly during the churn battery.
    battery("Delta", |pairs| {
        DeltaFitingTree::build_sorted(&DeltaConfig::new(64, 64), pairs).unwrap()
    });
    // Budget 0: pure overlay, no auto-merge.
    battery("Delta(no-merge)", |pairs| {
        DeltaFitingTree::build_sorted(&DeltaConfig::new(64, 0), pairs).unwrap()
    });
}

#[test]
fn bplus_tree_conforms() {
    battery("B+ tree", |pairs| {
        BPlusTree::build_sorted(&(), pairs).unwrap()
    });
}

#[test]
fn full_index_conforms() {
    battery("Full", |pairs| FullIndex::build_sorted(&(), pairs).unwrap());
}

#[test]
fn fixed_page_index_conforms() {
    battery("Fixed(page=64)", |pairs| {
        FixedPageIndex::build_sorted(&64, pairs).unwrap()
    });
    // Tiny pages: every range crosses many pages, removes empty pages.
    battery("Fixed(page=4)", |pairs| {
        FixedPageIndex::build_sorted(&4, pairs).unwrap()
    });
}

#[test]
fn binary_search_index_conforms() {
    battery("Binary", |pairs| {
        BinarySearchIndex::build_sorted(&(), pairs).unwrap()
    });
}

/// The size-accounting contract across structures, on the same data:
/// dense > fixed-page > FITing-Tree > binary (= 0), and the sharded
/// front-end adds only routing metadata on top of its shards.
#[test]
fn size_accounting_contract() {
    let pairs: Vec<(u64, u64)> = (0..100_000u64).map(|k| (k, k)).collect();
    let full = FullIndex::build_sorted(&(), pairs.clone()).unwrap();
    let fixed = FixedPageIndex::build_sorted(&128, pairs.clone()).unwrap();
    let fiting = FitingTree::build_sorted(&FitingTreeBuilder::new(64), pairs.clone()).unwrap();
    let binary = BinarySearchIndex::build_sorted(&(), pairs.clone()).unwrap();
    assert!(SortedIndex::size_bytes(&full) > SortedIndex::size_bytes(&fixed));
    assert!(SortedIndex::size_bytes(&fixed) > SortedIndex::size_bytes(&fiting));
    assert_eq!(SortedIndex::size_bytes(&binary), 0);

    let sharded: ShardedIndex<u64, u64, FitingTree<u64, u64>> =
        ShardedIndex::bulk_load(&FitingTreeBuilder::new(64), 8, pairs).unwrap();
    let mut shard_sum = 0;
    sharded.for_each_shard(|s| shard_sum += SortedIndex::size_bytes(s));
    assert_eq!(
        sharded.size_bytes(),
        shard_sum + sharded.shard_count() * fiting::index_api::SHARD_METADATA_BYTES
    );
}

/// Shard occupancy must be observable: `shard_lens` / `shard_stats`
/// see skewed growth (the rebalancing item's input signal), and the
/// per-shard sizes reconcile with the front-end's total.
#[test]
fn shard_stats_expose_imbalance() {
    let pairs: Vec<(u64, u64)> = (0..10_000u64).map(|k| (k * 2, k)).collect();
    let index: ShardedIndex<u64, u64, FitingTree<u64, u64>> =
        ShardedIndex::bulk_load(&FitingTreeBuilder::new(64), 4, pairs).unwrap();
    let before = index.shard_stats();
    assert_eq!(before.len(), index.shard_count());
    assert_eq!(index.shard_lens().iter().sum::<usize>(), 10_000);
    for (len, stats) in index.shard_lens().iter().zip(&before) {
        assert_eq!(*len, stats.entries);
    }

    // Append-heavy growth: everything routes past the last boundary.
    index.insert_many((0..3_000u64).map(|k| (100_000 + k * 2, k)));
    assert_eq!(index.shard_of(&200_000), index.shard_count() - 1);
    let after = index.shard_stats();
    assert_eq!(
        after.last().unwrap().entries,
        before.last().unwrap().entries + 3_000,
        "growth lands in (and is visible on) the last shard"
    );
    assert_eq!(after[0].entries, before[0].entries, "first shard untouched");

    let shard_bytes: usize = after.iter().map(|s| s.size_bytes).sum();
    assert_eq!(
        index.size_bytes(),
        shard_bytes + index.shard_count() * fiting::index_api::SHARD_METADATA_BYTES
    );
}

/// Multi-threaded smoke test: concurrent readers, point writers, and a
/// batched writer against a sharded FITing-Tree; final state must match
/// a sequential model.
#[test]
fn sharded_index_concurrent_smoke() {
    let n = 20_000u64;
    let pairs: Vec<(u64, u64)> = (0..n).map(|k| (k * 2, k)).collect();
    let index: ShardedIndex<u64, u64, FitingTree<u64, u64>> =
        ShardedIndex::bulk_load(&FitingTreeBuilder::new(64), 8, pairs).unwrap();
    assert_eq!(index.shard_count(), 8);

    std::thread::scope(|scope| {
        // Readers hammer point lookups and cross-shard scans while
        // writers run.
        for r in 0..4u64 {
            let index = index.clone();
            scope.spawn(move || {
                let mut hits = 0u64;
                for pass in 0..30u64 {
                    for k in (0..n).step_by(23) {
                        if index.get(&(k * 2)).is_some() {
                            hits += 1;
                        }
                    }
                    let lo = (r * 1_000 + pass) * 2;
                    let window = index.range_collect(lo..lo + 2_000);
                    assert!(window.windows(2).all(|w| w[0].0 < w[1].0));
                }
                assert!(hits > 0);
            });
        }
        // Point writer: odd keys, disjoint from the batch writer's.
        {
            let index = index.clone();
            scope.spawn(move || {
                for k in 0..2_000u64 {
                    index.insert(k * 4 + 1, k);
                }
            });
        }
        // Batch writer: one insert_many spanning all shards.
        {
            let index = index.clone();
            scope.spawn(move || {
                let fresh = index.insert_many((0..2_000u64).map(|k| (k * 4 + 3, k)));
                assert_eq!(fresh, 2_000);
            });
        }
    });

    assert_eq!(index.len(), (n + 4_000) as usize);
    let mut model: BTreeMap<u64, u64> = (0..n).map(|k| (k * 2, k)).collect();
    for k in 0..2_000u64 {
        model.insert(k * 4 + 1, k);
        model.insert(k * 4 + 3, k);
    }
    let want: Vec<(u64, u64)> = model.into_iter().collect();
    assert_eq!(index.range_collect(..), want);
    index.for_each_shard(|s| s.check_invariants().unwrap());
}
