//! Facade crate for the FITing-Tree reproduction workspace.
//!
//! Re-exports every workspace crate under one root so the examples and
//! cross-crate integration tests have a single dependency:
//!
//! * [`index_api`] — the crate-neutral `SortedIndex` / `BuildableIndex`
//!   / `DynSortedIndex` trait family every structure implements, plus
//!   the sharded concurrent front-end `ShardedIndex`.
//! * [`service`] — the command-pipeline service layer over
//!   `ShardedIndex`: typed commands, bounded per-shard queues,
//!   batching/coalescing workers, ticket completions, backpressure.
//! * [`storage`] — the durability layer: snapshot pages, per-shard
//!   write-ahead logs with group commit, and crash-consistent
//!   recovery (`DurableIndex` wraps any snapshot-capable structure
//!   and drops into `ShardedIndex`/the service unchanged).
//! * [`sync`] — the wait-free read-path primitives: epoch-reclaimed
//!   snapshot publication (`Snapshots`) and the per-shard seqlock
//!   (`SeqRwLock`), the audited foundation of `ShardedIndex`'s
//!   zero-lock steady-state reads.
//! * [`telemetry`] — the observability layer: wait-free counters,
//!   gauges, and log-bucketed latency histograms (≤ 1 % relative
//!   error, mergeable snapshots) unified by `MetricsRegistry`;
//!   `IndexService::metrics` / `install_metrics` report through it.
//!   The metric catalog and runbook live in `docs/OBSERVABILITY.md`.
//! * [`tree`] — the FITing-Tree itself (clustered + non-clustered index,
//!   insert path, cost model). This is the paper's contribution.
//! * [`plr`] — bounded-error piecewise-linear segmentation
//!   (ShrinkingCone and the optimal DP).
//! * [`btree`] — a standalone in-memory B+ tree, kept purely as a
//!   benchmark baseline (the FITing-Tree no longer uses it: its flat
//!   directory is spliced in place on mutation).
//! * [`baselines`] — full (dense) index, fixed-size-page index, and
//!   binary search, benchmarked against the FITing-Tree throughout the
//!   paper's evaluation.
//! * [`datasets`] — seeded synthetic generators standing in for the
//!   paper's Weblogs / IoT / Maps / Taxi traces, plus the non-linearity
//!   metric of Figure 8.
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md`
//! for paper-vs-measured results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use fiting_baselines as baselines;
pub use fiting_btree as btree;
pub use fiting_datasets as datasets;
pub use fiting_index_api as index_api;
pub use fiting_index_service as service;
pub use fiting_plr as plr;
pub use fiting_storage as storage;
pub use fiting_sync as sync;
pub use fiting_telemetry as telemetry;
pub use fiting_tree as tree;

pub use fiting_index_api::{
    BuildableIndex, Degraded, DynSortedIndex, Key, OrderedF64, ShardHealth, ShardStats,
    ShardedIndex, SortedIndex,
};
pub use fiting_index_service::{
    Canceled, Client, Command, CommandError, Completer, DurabilityConfig, IndexService, LaneHealth,
    ServiceConfig, ServiceStats, SupervisorConfig, Ticket,
};
pub use fiting_storage::{
    open_sharded, DurableConfig, DurableIndex, FaultIo, FaultPlan, FsyncPolicy, InjectKind, RealIo,
    RetryPolicy, StorageError, StorageIo, StoreReport,
};
